// Package sensory simulates sensory evaluation — the questionnaire
// panels of the food-science studies the paper builds on. The paper's
// Related Work rests on the tension between sensory panels (intuitive
// but subjective, small-N, vocabulary-dependent) and instrumental
// measurement (objective but hard to interpret); this package models a
// panel of subjects scoring samples and choosing texture words, so the
// sensory-instrumental correlation experiments of Meullenet et al. and
// Paula & Conti-Silva can be reproduced against the TPA simulator.
package sensory

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lexicon"
	"repro/internal/rheology"
	"repro/internal/stats"
)

// Panel is a set of simulated subjects.
type Panel struct {
	// Subjects is the panel size. The cited studies use 8-30.
	Subjects int
	// ScaleNoise is the σ of each subject's per-sample scoring noise on
	// the 9-point intensity scale.
	ScaleNoise float64
	// SubjectBias is the σ of each subject's stable offset — some
	// subjects score everything harder.
	SubjectBias float64
	// VocabularySize is how many texture words a subject knows; word
	// choice varies by speaker (Nishinari et al. 1989's cross-language
	// observation applies within a language too).
	VocabularySize int

	Seed uint64
}

// DefaultPanel mirrors a typical home-economics study panel.
func DefaultPanel() Panel {
	return Panel{Subjects: 12, ScaleNoise: 0.8, SubjectBias: 0.5, VocabularySize: 60, Seed: 1}
}

// Score is one subject's evaluation of one sample.
type Score struct {
	Subject  int
	Hardness float64 // 1..9 intensity
	Cohesive float64 // 1..9 (perceived elasticity/springiness)
	Adhesive float64 // 1..9 (perceived stickiness)
	Words    []int   // texture-term IDs the subject chose
}

// Evaluation aggregates a panel's scores for one sample.
type Evaluation struct {
	Attr   rheology.Attributes // the instrumental ground truth
	Scores []Score
}

// MeanHardness returns the panel-mean hardness score.
func (e Evaluation) MeanHardness() float64 {
	return e.mean(func(s Score) float64 { return s.Hardness })
}

// MeanCohesive returns the panel-mean cohesiveness score.
func (e Evaluation) MeanCohesive() float64 {
	return e.mean(func(s Score) float64 { return s.Cohesive })
}

// MeanAdhesive returns the panel-mean adhesiveness score.
func (e Evaluation) MeanAdhesive() float64 {
	return e.mean(func(s Score) float64 { return s.Adhesive })
}

func (e Evaluation) mean(f func(Score) float64) float64 {
	s := 0.0
	for _, sc := range e.Scores {
		s += f(sc)
	}
	return s / float64(len(e.Scores))
}

// Evaluate runs the panel over samples with the given instrumental
// attributes, returning one Evaluation per sample. Perceived intensity
// follows a psychophysical power law of the instrumental value
// (Stevens exponent ≈ 0.6 for oral force perception) plus subject bias
// and noise; word choice draws from the subject's personal vocabulary,
// weighted by how well each term's annotation matches the percept.
func (p Panel) Evaluate(dict *lexicon.Dictionary, samples []rheology.Attributes) ([]Evaluation, error) {
	if p.Subjects < 2 {
		return nil, fmt.Errorf("sensory: need ≥2 subjects, have %d", p.Subjects)
	}
	if p.VocabularySize < 5 {
		return nil, fmt.Errorf("sensory: vocabulary size %d too small", p.VocabularySize)
	}
	rng := stats.NewRNG(p.Seed, 0x5E4503)

	// Per-subject stable state: bias and personal vocabulary.
	biases := make([]float64, p.Subjects)
	vocab := make([][]int, p.Subjects)
	gelTerms := dict.GelRelated()
	for s := 0; s < p.Subjects; s++ {
		biases[s] = rng.Normal(0, p.SubjectBias)
		perm := rng.Perm(len(gelTerms))
		n := p.VocabularySize
		if n > len(perm) {
			n = len(perm)
		}
		for _, idx := range perm[:n] {
			vocab[s] = append(vocab[s], gelTerms[idx])
		}
	}

	out := make([]Evaluation, 0, len(samples))
	for _, attr := range samples {
		ev := Evaluation{Attr: attr}
		for s := 0; s < p.Subjects; s++ {
			sc := Score{
				Subject:  s,
				Hardness: clampScale(perceived(attr.Hardness, 6) + biases[s] + rng.Normal(0, p.ScaleNoise)),
				Cohesive: clampScale(perceived(attr.Cohesiveness, 1) + biases[s] + rng.Normal(0, p.ScaleNoise)),
				Adhesive: clampScale(perceived(attr.Adhesiveness, 13) + biases[s] + rng.Normal(0, p.ScaleNoise)),
			}
			sc.Words = p.chooseWords(dict, vocab[s], attr, rng)
			ev.Scores = append(ev.Scores, sc)
		}
		out = append(out, ev)
	}
	return out, nil
}

// perceived maps an instrumental value to the 9-point scale by a
// Stevens power law, with `ref` the instrumental value that anchors
// the scale's top.
func perceived(v, ref float64) float64 {
	if v <= 0 {
		return 1
	}
	return 1 + 8*math.Pow(v/ref, 0.6)
}

func clampScale(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 9 {
		return 9
	}
	return v
}

// chooseWords picks 1-3 terms from the subject's vocabulary, weighted
// by the squared-exponential match between each term's annotation and
// the normalized percept.
func (p Panel) chooseWords(dict *lexicon.Dictionary, vocab []int, attr rheology.Attributes, rng *stats.RNG) []int {
	// Normalize the percept onto the annotation scales.
	h := math.Tanh((attr.Hardness - 1.5) / 2) // ±1: soft … hard
	c := math.Tanh((attr.Cohesiveness - 0.35) * 4)
	a := math.Tanh(attr.Adhesiveness / 2) // 0..1

	weights := make([]float64, len(vocab))
	for i, id := range vocab {
		t := dict.Term(id)
		d := (t.Hardness-h)*(t.Hardness-h) +
			(t.Cohesiveness-c)*(t.Cohesiveness-c)*0.5 +
			(t.Adhesiveness-a)*(t.Adhesiveness-a)*0.5
		weights[i] = math.Exp(-2 * d)
	}
	n := 1 + rng.IntN(3)
	var words []int
	for i := 0; i < n; i++ {
		words = append(words, vocab[rng.Categorical(weights)])
	}
	return words
}

// Correlation is the sensory-instrumental agreement on one axis.
type Correlation struct {
	Axis     lexicon.Axis
	Spearman float64
	Pearson  float64
}

// Correlate computes the sensory-instrumental correlations over a set
// of evaluations — the experiment of the correlation studies the paper
// cites ([13], [14]).
func Correlate(evals []Evaluation) []Correlation {
	inst := map[lexicon.Axis][]float64{}
	sens := map[lexicon.Axis][]float64{}
	for _, e := range evals {
		inst[lexicon.Hardness] = append(inst[lexicon.Hardness], e.Attr.Hardness)
		inst[lexicon.Cohesiveness] = append(inst[lexicon.Cohesiveness], e.Attr.Cohesiveness)
		inst[lexicon.Adhesiveness] = append(inst[lexicon.Adhesiveness], e.Attr.Adhesiveness)
		sens[lexicon.Hardness] = append(sens[lexicon.Hardness], e.MeanHardness())
		sens[lexicon.Cohesiveness] = append(sens[lexicon.Cohesiveness], e.MeanCohesive())
		sens[lexicon.Adhesiveness] = append(sens[lexicon.Adhesiveness], e.MeanAdhesive())
	}
	var out []Correlation
	for _, axis := range []lexicon.Axis{lexicon.Hardness, lexicon.Cohesiveness, lexicon.Adhesiveness} {
		out = append(out, Correlation{
			Axis:     axis,
			Spearman: stats.SpearmanCorr(sens[axis], inst[axis]),
			Pearson:  stats.PearsonCorr(sens[axis], inst[axis]),
		})
	}
	return out
}

// WordAgreement measures how consistently the panel's chosen words
// match the dictionary's annotation for the dominant percept: the
// fraction of chosen words whose hardness sense agrees with the
// sample's instrumental hardness side (hard ≥ the anchor, soft below).
func WordAgreement(dict *lexicon.Dictionary, evals []Evaluation, hardAnchor float64) float64 {
	agree, total := 0, 0
	for _, e := range evals {
		wantHard := e.Attr.Hardness >= hardAnchor
		for _, sc := range e.Scores {
			for _, id := range sc.Words {
				sense := dict.Term(id).HardnessSense()
				if sense == lexicon.SenseNone {
					continue
				}
				total++
				if (sense == lexicon.SenseHard) == wantHard {
					agree++
				}
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(agree) / float64(total)
}

// TopWords tallies the panel's most chosen terms across evaluations.
func TopWords(dict *lexicon.Dictionary, evals []Evaluation, k int) []lexicon.Term {
	counts := map[int]int{}
	for _, e := range evals {
		for _, sc := range e.Scores {
			for _, id := range sc.Words {
				counts[id]++
			}
		}
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	out := make([]lexicon.Term, k)
	for i := 0; i < k; i++ {
		out[i] = dict.Term(ids[i])
	}
	return out
}
