package storage

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/resilience"
)

// fakeBundle builds a minimal valid RHEODUR1 bundle container around
// payload. The storage layer never decodes the model inside a bundle,
// so tests can use tiny synthetic payloads instead of fitting models —
// and the hand-rolled envelope doubles as a format-stability check
// against pipeline.BundleDigest.
func fakeBundle(t testing.TB, payload string) []byte {
	t.Helper()
	body := []byte(payload)
	sum := sha256.Sum256(body)
	hdr, err := json.Marshal(map[string]any{
		"format":      2,
		"kind":        "bundle",
		"schema":      1,
		"payload_len": len(body),
		"sha256":      hex.EncodeToString(sum[:]),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("RHEODUR1")
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	buf.Write(lenBuf[:])
	buf.Write(hdr)
	buf.Write(body)
	return buf.Bytes()
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// fastRobust wraps inner with test-speed timeouts and no retry delay.
func fastRobust(inner BundleStore, attempts, threshold int) *Robust {
	return NewRobust(inner, RobustOptions{
		OpTimeout:        100 * time.Millisecond,
		Retry:            resilience.Backoff{Attempts: attempts, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 7},
		BreakerThreshold: threshold,
		BreakerCooldown:  50 * time.Millisecond,
	})
}

// TestFSStoreRoundtrip: Put/Get/Stat/List against a real directory,
// including the not-found and nested-key cases.
func TestFSStoreRoundtrip(t *testing.T) {
	ctx := ctxT(t)
	s := NewFSStore(t.TempDir())

	if _, err := s.Get(ctx, "bundles/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing: %v, want ErrNotFound", err)
	}
	if _, err := s.Stat(ctx, "bundles/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat missing: %v, want ErrNotFound", err)
	}

	data := []byte("hello bundle")
	if err := s.Put(ctx, "bundles/abc.bundle", data); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "registry/manifest.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "bundles/abc.bundle")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get = %q, %v", got, err)
	}
	info, err := s.Stat(ctx, "bundles/abc.bundle")
	if err != nil || info.Size != int64(len(data)) {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	keys, err := s.List(ctx, "bundles/")
	if err != nil || len(keys) != 1 || keys[0] != "bundles/abc.bundle" {
		t.Fatalf("list = %v, %v", keys, err)
	}
	all, err := s.List(ctx, "")
	if err != nil || len(all) != 2 {
		t.Fatalf("list all = %v, %v", all, err)
	}

	// Overwrite is atomic replacement, not append.
	if err := s.Put(ctx, "bundles/abc.bundle", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(ctx, "bundles/abc.bundle"); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// TestFSStoreRejectsEscapingKeys: keys must not address files outside
// the root.
func TestFSStoreRejectsEscapingKeys(t *testing.T) {
	ctx := ctxT(t)
	s := NewFSStore(t.TempDir())
	for _, key := range []string{"", "/etc/passwd", "../secret", "a/../../b", "a//b", "./a"} {
		if err := s.Put(ctx, key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an escaping key", key)
		}
		if _, err := s.Get(ctx, key); err == nil {
			t.Errorf("Get(%q) accepted an escaping key", key)
		}
	}
}

// TestFSStoreListSkipsTempFiles: a crashed writer's temp file is not
// an object.
func TestFSStoreListSkipsTempFiles(t *testing.T) {
	ctx := ctxT(t)
	dir := t.TempDir()
	s := NewFSStore(dir)
	if err := s.Put(ctx, "bundles/good.bundle", []byte("x")); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "bundles", "bad.bundle.tmp-123")
	if err := os.WriteFile(torn, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List(ctx, "bundles/")
	if err != nil || len(keys) != 1 || keys[0] != "bundles/good.bundle" {
		t.Fatalf("list = %v, %v; temp files must be invisible", keys, err)
	}
}

// TestFSStoreRootOutage: a root directory that disappears (volume
// unmounted, store deleted) is an outage, not an empty store — every
// op must come back ErrStoreUnavailable so followers degrade instead
// of concluding the registry is empty.
func TestFSStoreRootOutage(t *testing.T) {
	ctx := ctxT(t)
	root := filepath.Join(t.TempDir(), "store")
	s, err := Open("fs:"+root, RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "bundles/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Root present: a missing key is an answer.
	if _, err := s.Get(ctx, "bundles/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key with live root: %v, want ErrNotFound", err)
	}

	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "bundles/a"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("get with root gone: %v, want ErrStoreUnavailable", err)
	}
	if _, err := s.Stat(ctx, "bundles/a"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("stat with root gone: %v, want ErrStoreUnavailable", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("list with root gone: %v, want ErrStoreUnavailable", err)
	}
}

// TestRobustRetriesTransientFaults: two scripted transport errors are
// absorbed by the retry schedule; the caller sees success.
func TestRobustRetriesTransientFaults(t *testing.T) {
	ctx := ctxT(t)
	kv := NewKVStore()
	transient := errors.New("connection reset")
	kv.Faults = func() resilience.Injector {
		s := resilience.NewScript()
		s.Queue("kv.get", 2, resilience.Fault{Err: transient})
		return s
	}()
	r := fastRobust(kv, 3, 5)

	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("get after transient faults = %q, %v", got, err)
	}
	if calls := kv.Calls("get"); calls != 3 {
		t.Fatalf("backend saw %d gets, want 3 (2 failures + 1 success)", calls)
	}
	if r.Breaker().State() != resilience.BreakerClosed {
		t.Fatalf("breaker %v after recovered retries, want closed", r.Breaker().State())
	}
}

// TestRobustNotFoundIsNotRetried: a missing object is an answer, not
// an outage — one backend call, breaker untouched.
func TestRobustNotFoundIsNotRetried(t *testing.T) {
	ctx := ctxT(t)
	kv := NewKVStore()
	r := fastRobust(kv, 3, 2)
	for i := 0; i < 5; i++ {
		if _, err := r.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get missing: %v, want ErrNotFound", err)
		}
	}
	if calls := kv.Calls("get"); calls != 5 {
		t.Fatalf("backend saw %d gets, want 5 (no retries on not-found)", calls)
	}
	if r.Breaker().State() != resilience.BreakerClosed {
		t.Fatal("not-found answers must not open the breaker")
	}
}

// TestRobustBreakerOpensAndRecovers: a dead backend opens the circuit
// (further calls fail fast without touching it); once the backend
// recovers and the cooldown passes, a probe closes it again.
func TestRobustBreakerOpensAndRecovers(t *testing.T) {
	ctx := ctxT(t)
	kv := NewKVStore()
	down := errors.New("backend down")
	script := resilience.NewScript()
	script.Queue("kv.get", -1, resilience.Fault{Err: down})
	kv.Faults = script
	r := fastRobust(kv, 2, 2) // 2 attempts per op, breaker opens after 2 failed ops

	if err := kv.Put(ctx, "k", []byte("v")); err != nil { // bypass envelope to seed data
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Get(ctx, "k"); !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("get %d on dead backend: %v, want ErrStoreUnavailable", i, err)
		}
	}
	if r.Breaker().State() != resilience.BreakerOpen {
		t.Fatalf("breaker %v after 2 failed ops, want open", r.Breaker().State())
	}
	before := kv.Calls("get")
	if _, err := r.Get(ctx, "k"); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("get on open circuit: %v", err)
	}
	if after := kv.Calls("get"); after != before {
		t.Fatalf("open circuit still reached the backend (%d → %d calls)", before, after)
	}

	// Backend recovers; after the cooldown one probe closes the circuit.
	kv.Faults = nil
	time.Sleep(60 * time.Millisecond)
	got, err := r.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("get after recovery = %q, %v", got, err)
	}
	if r.Breaker().State() != resilience.BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", r.Breaker().State())
	}
}

// TestRobustSlowBackendTimesOut: a hung backend is bounded by the
// per-op timeout and surfaces as ErrStoreUnavailable.
func TestRobustSlowBackendTimesOut(t *testing.T) {
	ctx := ctxT(t)
	kv := NewKVStore()
	script := resilience.NewScript()
	script.Queue("kv.get", -1, resilience.Fault{Delay: 10 * time.Second})
	kv.Faults = script
	r := NewRobust(kv, RobustOptions{
		OpTimeout:        20 * time.Millisecond,
		Retry:            resilience.Backoff{Attempts: 1},
		BreakerThreshold: 100,
	})
	start := time.Now()
	_, err := r.Get(ctx, "k")
	if !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("slow get: %v, want ErrStoreUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow get took %v; the per-op timeout did not bound it", elapsed)
	}
}

// TestRobustCallerCancellation: the caller's own context ending is not
// a backend failure — no breaker damage, context error surfaced.
func TestRobustCallerCancellation(t *testing.T) {
	kv := NewKVStore()
	script := resilience.NewScript()
	script.Queue("kv.get", -1, resilience.Fault{Delay: 10 * time.Second})
	kv.Faults = script
	r := NewRobust(kv, RobustOptions{
		OpTimeout:        5 * time.Second,
		Retry:            resilience.Backoff{Attempts: 1},
		BreakerThreshold: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.Get(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled get: %v, want caller's deadline error", err)
	}
	if r.Breaker().State() != resilience.BreakerClosed {
		t.Fatal("caller cancellation must not open the breaker")
	}
}

// TestOpenSpecs: the -store spec syntax maps to the right backends.
func TestOpenSpecs(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		spec string
		name string
	}{
		{"fs:" + dir, "fs"},
		{dir, "fs"},
		{"mem:", "kv"},
	} {
		st, err := Open(tc.spec, RobustOptions{})
		if err != nil {
			t.Fatalf("Open(%q): %v", tc.spec, err)
		}
		if st.Name() != tc.name {
			t.Errorf("Open(%q).Name() = %q, want %q", tc.spec, st.Name(), tc.name)
		}
	}
	for _, bad := range []string{"", "fs:", "redis://localhost"} {
		if _, err := Open(bad, RobustOptions{}); err == nil {
			t.Errorf("Open(%q) accepted a bad spec", bad)
		}
	}
}
