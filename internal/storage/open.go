package storage

import (
	"fmt"
	"os"
	"strings"
)

// Open builds a robustness-wrapped store from an operator-facing spec,
// the syntax behind the binaries' -store flag:
//
//	fs:/var/lib/texture/registry   local-FS backend rooted there
//	/var/lib/texture/registry      same (bare paths mean fs)
//	mem:                           in-process KV (demos and tests only:
//	                               each process sees its own empty store)
//
// The returned store is always wrapped in Robust with opts, so every
// caller gets timeouts, retries, the circuit breaker and typed errors
// without opting in.
func Open(spec string, opts RobustOptions) (*Robust, error) {
	var inner BundleStore
	switch {
	case spec == "":
		return nil, fmt.Errorf("storage: empty store spec")
	case spec == "mem:" || spec == "mem":
		inner = NewKVStore()
	case strings.HasPrefix(spec, "fs:"):
		dir := strings.TrimPrefix(spec, "fs:")
		if dir == "" {
			return nil, fmt.Errorf("storage: fs store spec %q has no directory", spec)
		}
		inner = NewFSStore(dir)
	case strings.Contains(spec, ":"):
		return nil, fmt.Errorf("storage: unknown store scheme in %q (want fs:DIR or mem:)", spec)
	default:
		inner = NewFSStore(spec)
	}
	// Create the FS root eagerly: "root exists" becomes an invariant
	// from open time, so a root that later disappears is unambiguously
	// an outage (ErrStoreUnavailable), never mistaken for an empty
	// registry.
	if fsStore, ok := inner.(*FSStore); ok {
		if err := os.MkdirAll(fsStore.Root, 0o755); err != nil {
			return nil, fmt.Errorf("storage: creating store root %q: %w", fsStore.Root, err)
		}
	}
	return NewRobust(inner, opts), nil
}
