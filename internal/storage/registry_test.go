package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/resilience"
)

func testRegistry(t *testing.T) (*Registry, *KVStore) {
	t.Helper()
	kv := NewKVStore()
	reg := NewRegistry(fastRobust(kv, 2, 100))
	reg.Clock = func() time.Time { return time.Unix(1700000000, 0) }
	return reg, kv
}

// TestRegistryLifecycle walks the full operator flow: publish two
// generations, promote, promote again, roll back, pin.
func TestRegistryLifecycle(t *testing.T) {
	ctx := ctxT(t)
	reg, _ := testRegistry(t)

	if _, err := reg.Promoted(ctx); !errors.Is(err, ErrNoPromoted) {
		t.Fatalf("empty registry Promoted: %v, want ErrNoPromoted", err)
	}

	b1 := fakeBundle(t, "model generation one")
	b2 := fakeBundle(t, "model generation two")
	g1, err := reg.Publish(ctx, b1, "first fit")
	if err != nil {
		t.Fatal(err)
	}
	if g1.ID != 1 || g1.Note != "first fit" || g1.Size != int64(len(b1)) {
		t.Fatalf("g1 = %+v", g1)
	}
	g2, err := reg.Publish(ctx, b2, "refit")
	if err != nil {
		t.Fatal(err)
	}
	if g2.ID != 2 {
		t.Fatalf("g2.ID = %d, want 2", g2.ID)
	}

	// Publishing is not promoting.
	if _, err := reg.Promoted(ctx); !errors.Is(err, ErrNoPromoted) {
		t.Fatalf("Promoted before any promote: %v", err)
	}
	if err := reg.Promote(ctx, g1.ID); err != nil {
		t.Fatal(err)
	}
	if p, err := reg.Promoted(ctx); err != nil || p.ID != g1.ID {
		t.Fatalf("promoted = %+v, %v; want generation 1", p, err)
	}
	if err := reg.Promote(ctx, g2.ID); err != nil {
		t.Fatal(err)
	}
	if p, _ := reg.Promoted(ctx); p.ID != g2.ID {
		t.Fatalf("promoted = %d, want 2", p.ID)
	}

	// Rollback returns to the previous promoted generation.
	back, err := reg.Rollback(ctx)
	if err != nil || back != g1.ID {
		t.Fatalf("rollback = %d, %v; want generation 1", back, err)
	}
	if p, _ := reg.Promoted(ctx); p.ID != g1.ID {
		t.Fatalf("promoted after rollback = %d, want 1", p.ID)
	}

	if err := reg.Pin(ctx, g1.ID, true); err != nil {
		t.Fatal(err)
	}
	if g, _ := reg.Generation(ctx, g1.ID); !g.Pinned {
		t.Fatal("pin did not stick")
	}

	// Fetch verifies content against the generation digest.
	got, err := reg.Fetch(ctx, g1)
	if err != nil || string(got) != string(b1) {
		t.Fatalf("fetch g1: %d bytes, %v", len(got), err)
	}

	// Unknown generations are typed.
	if err := reg.Promote(ctx, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("promote unknown: %v", err)
	}
	if err := reg.Pin(ctx, 99, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin unknown: %v", err)
	}
}

// TestRegistryPublishIdempotent: same bytes → same digest → same
// generation; the lineage does not grow.
func TestRegistryPublishIdempotent(t *testing.T) {
	ctx := ctxT(t)
	reg, _ := testRegistry(t)
	b := fakeBundle(t, "identical content")
	g1, err := reg.Publish(ctx, b, "first")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := reg.Publish(ctx, b, "again")
	if err != nil {
		t.Fatal(err)
	}
	if g2.ID != g1.ID || g2.Digest != g1.Digest {
		t.Fatalf("republish created generation %d, want %d", g2.ID, g1.ID)
	}
	m, err := reg.Manifest(ctx)
	if err != nil || len(m.Generations) != 1 {
		t.Fatalf("lineage length %d, %v; want 1", len(m.Generations), err)
	}
}

// TestRegistryRejectsGarbagePublish: bytes that are not a bundle
// container never reach the store.
func TestRegistryRejectsGarbagePublish(t *testing.T) {
	ctx := ctxT(t)
	reg, kv := testRegistry(t)
	if _, err := reg.Publish(ctx, []byte("not a container"), ""); err == nil {
		t.Fatal("garbage publish accepted")
	}
	if keys, _ := kv.List(ctx, "bundles/"); len(keys) != 0 {
		t.Fatalf("garbage reached the store: %v", keys)
	}
}

// TestRegistryFetchDigestMismatch: a blob corrupted at rest (or in
// transit) is refused with ErrDigestMismatch, never returned.
func TestRegistryFetchDigestMismatch(t *testing.T) {
	ctx := ctxT(t)
	reg, kv := testRegistry(t)
	g, err := reg.Publish(ctx, fakeBundle(t, "soon to be mangled"), "")
	if err != nil {
		t.Fatal(err)
	}
	kv.Mangle = func(key string, data []byte) []byte {
		if key != BundleKey(g.Digest) {
			return data
		}
		cp := append([]byte(nil), data...)
		cp[len(cp)-1] ^= 0xFF // flip a payload bit
		return cp
	}
	if _, err := reg.Fetch(ctx, g); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("fetch of mangled blob: %v, want ErrDigestMismatch", err)
	}
}

// TestRegistryManifestCorruption: a damaged manifest is a typed
// failure, and an intact rewrite recovers the registry.
func TestRegistryManifestCorruption(t *testing.T) {
	ctx := ctxT(t)
	reg, kv := testRegistry(t)
	g, err := reg.Publish(ctx, fakeBundle(t, "v1"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(ctx, g.ID); err != nil {
		t.Fatal(err)
	}

	kv.Mangle = func(key string, data []byte) []byte {
		if key != ManifestKey {
			return data
		}
		cp := append([]byte(nil), data...)
		cp[len(cp)/2] ^= 0x40
		return cp
	}
	if _, err := reg.Manifest(ctx); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("corrupt manifest load: %v, want ErrManifestCorrupt", err)
	}
	if _, err := reg.Promoted(ctx); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("Promoted over corrupt manifest: %v", err)
	}

	// The store heals (proxy fixed, file restored): reads work again.
	kv.Mangle = nil
	if p, err := reg.Promoted(ctx); err != nil || p.ID != g.ID {
		t.Fatalf("recovered Promoted = %+v, %v", p, err)
	}
}

// TestRegistryPromoteWhileFetching: replicas fetching under a stream
// of publishes and promotes never see a torn or mismatched bundle —
// content addressing makes blobs immutable, so every fetch verifies.
// Run under -race this also proves the registry read path is
// goroutine-safe.
func TestRegistryPromoteWhileFetching(t *testing.T) {
	ctx := ctxT(t)
	reg, _ := testRegistry(t)
	first, err := reg.Publish(ctx, fakeBundle(t, "gen 0"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(ctx, first.ID); err != nil {
		t.Fatal(err)
	}

	const rollouts = 20
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ { // replica fetch loops
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				p, err := reg.Promoted(ctx)
				if err != nil {
					t.Errorf("Promoted mid-rollout: %v", err)
					return
				}
				if _, err := reg.Fetch(ctx, p); err != nil {
					t.Errorf("Fetch generation %d mid-rollout: %v", p.ID, err)
					return
				}
			}
		}()
	}
	for i := 1; i <= rollouts; i++ {
		g, err := reg.Publish(ctx, fakeBundle(t, fmt.Sprintf("gen %d", i)), "")
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Promote(ctx, g.ID); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	p, err := reg.Promoted(ctx)
	if err != nil || p.ID != int64(rollouts+1) {
		t.Fatalf("final promoted = %+v, %v; want generation %d", p, err, rollouts+1)
	}
}

// TestRegistryStoreOutage: with the backend dead, every registry read
// comes back ErrStoreUnavailable — the signal the serving layer turns
// into degraded mode.
func TestRegistryStoreOutage(t *testing.T) {
	ctx := ctxT(t)
	kv := NewKVStore()
	robust := fastRobust(kv, 1, 100)
	reg := NewRegistry(robust)
	g, err := reg.Publish(ctx, fakeBundle(t, "v1"), "")
	if err != nil {
		t.Fatal(err)
	}
	script := resilience.NewScript()
	script.Queue("kv.get", -1, resilience.Fault{Err: errors.New("backend unplugged")})
	kv.Faults = script

	if _, err := reg.Promoted(ctx); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Promoted during outage: %v, want ErrStoreUnavailable", err)
	}
	if _, err := reg.Fetch(ctx, g); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("Fetch during outage: %v, want ErrStoreUnavailable", err)
	}
}

// FuzzRegistryManifest drives arbitrary bytes through the manifest
// decoder: it must never panic, and every rejection must wrap
// ErrManifestCorrupt or pipeline.ErrVersion so replicas can always
// classify a bad manifest as "degraded, keep serving".
func FuzzRegistryManifest(f *testing.F) {
	good, err := EncodeManifest(&Manifest{
		Schema:   1,
		Promoted: 2,
		Previous: 1,
		Generations: []Generation{
			{ID: 1, Digest: "aaa", Size: 10, CreatedUnix: 1700000000},
			{ID: 2, Digest: "bbb", Size: 11, CreatedUnix: 1700000100, Pinned: true},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"sha256":"00","manifest":{}}`))
	f.Add([]byte(`{"schema":99,"sha256":"","manifest":null}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err == nil {
			if m == nil {
				t.Fatal("nil manifest without error")
			}
			if m.Promoted != 0 {
				if _, ok := m.generation(m.Promoted); !ok {
					t.Fatal("decoder accepted a manifest promoting an unknown generation")
				}
			}
			return
		}
		if !errors.Is(err, ErrManifestCorrupt) && !errors.Is(err, pipeline.ErrVersion) {
			t.Fatalf("untyped manifest error: %v", err)
		}
	})
}
