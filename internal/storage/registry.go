package storage

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/pipeline"
)

// ManifestKey is where the registry manifest lives inside the store.
const ManifestKey = "registry/manifest.json"

// manifestSchemaVersion guards the manifest document layout.
const manifestSchemaVersion = 1

// ErrManifestCorrupt marks a registry manifest whose envelope digest
// does not match its body, or whose JSON cannot be parsed — the
// registry equivalent of pipeline.ErrCorrupt. A replica seeing it
// keeps serving its last-good model and reports degraded.
var ErrManifestCorrupt = errors.New("storage: registry manifest corrupt")

// ErrNoPromoted marks a registry that exists but has no promoted
// generation yet — a fleet waiting for its first rollout, not a fault.
var ErrNoPromoted = errors.New("storage: no promoted generation")

// BundleKey returns the store key a bundle with this content digest
// lives under. Content addressing makes published blobs immutable:
// a digest is written once and never rewritten, so a fetch racing a
// promote can never observe a half-replaced bundle.
func BundleKey(digest string) string { return "bundles/" + digest + ".bundle" }

// Generation is one published model in the registry's lineage.
type Generation struct {
	// ID is the monotonically increasing generation number.
	ID int64 `json:"id"`
	// Digest is the bundle's content address — the RHEODUR1 container's
	// hex SHA-256 payload digest.
	Digest string `json:"digest"`
	// Size is the bundle blob's size in bytes.
	Size int64 `json:"size"`
	// Note is free-form operator context ("nightly refit 2026-08-07").
	Note string `json:"note,omitempty"`
	// CreatedUnix is the publish time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Pinned protects the generation from future pruning tools and
	// marks it as a deliberate rollback target.
	Pinned bool `json:"pinned,omitempty"`
}

// Manifest is the registry's source of truth: the generation lineage
// and which generation the fleet should serve.
type Manifest struct {
	Schema int `json:"schema"`
	// Promoted is the generation ID replicas should converge to;
	// 0 means nothing has been promoted yet.
	Promoted int64 `json:"promoted"`
	// Previous is the generation promoted before the current one — the
	// rollback target. 0 when there is none.
	Previous    int64        `json:"previous,omitempty"`
	Generations []Generation `json:"generations"`
}

// generation finds a lineage entry by ID.
func (m *Manifest) generation(id int64) (*Generation, bool) {
	for i := range m.Generations {
		if m.Generations[i].ID == id {
			return &m.Generations[i], true
		}
	}
	return nil, false
}

// manifestEnvelope is the on-store form: the manifest JSON plus its
// own SHA-256, so a torn or bit-flipped manifest is detected before a
// single field is trusted.
type manifestEnvelope struct {
	Schema   int             `json:"schema"`
	SHA256   string          `json:"sha256"`
	Manifest json.RawMessage `json:"manifest"`
}

// EncodeManifest renders the digest-guarded envelope bytes.
func EncodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("storage: encoding manifest: %w", err)
	}
	sum := sha256.Sum256(body)
	env, err := json.Marshal(manifestEnvelope{
		Schema:   manifestSchemaVersion,
		SHA256:   hex.EncodeToString(sum[:]),
		Manifest: body,
	})
	if err != nil {
		return nil, fmt.Errorf("storage: encoding manifest envelope: %w", err)
	}
	return env, nil
}

// DecodeManifest parses and integrity-checks envelope bytes. Every
// rejection wraps ErrManifestCorrupt except a future schema, which
// wraps pipeline.ErrVersion — "damaged" and "too new" call for
// different operator responses.
func DecodeManifest(b []byte) (*Manifest, error) {
	var env manifestEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("storage: manifest envelope unparseable: %w: %w", ErrManifestCorrupt, err)
	}
	if env.Schema > manifestSchemaVersion || env.Schema < 1 {
		return nil, fmt.Errorf("storage: manifest schema %d, this build reads ≤ %d: %w",
			env.Schema, manifestSchemaVersion, pipeline.ErrVersion)
	}
	want, err := hex.DecodeString(env.SHA256)
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("storage: manifest digest unparseable: %w", ErrManifestCorrupt)
	}
	sum := sha256.Sum256(env.Manifest)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("storage: manifest digest mismatch: %w", ErrManifestCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(env.Manifest, &m); err != nil {
		return nil, fmt.Errorf("storage: manifest body unparseable: %w: %w", ErrManifestCorrupt, err)
	}
	if m.Schema > manifestSchemaVersion || m.Schema < 1 {
		return nil, fmt.Errorf("storage: manifest body schema %d, this build reads ≤ %d: %w",
			m.Schema, manifestSchemaVersion, pipeline.ErrVersion)
	}
	for _, g := range m.Generations {
		if g.ID <= 0 || g.Digest == "" {
			return nil, fmt.Errorf("storage: manifest generation %d malformed: %w", g.ID, ErrManifestCorrupt)
		}
	}
	if m.Promoted != 0 {
		if _, ok := m.generation(m.Promoted); !ok {
			return nil, fmt.Errorf("storage: manifest promotes unknown generation %d: %w",
				m.Promoted, ErrManifestCorrupt)
		}
	}
	return &m, nil
}

// Registry tracks generations of content-addressed bundles in a
// BundleStore. Reads are safe from any number of replicas; the write
// side (Publish/Promote/Rollback/Pin) assumes a single operator or
// pipeline at a time — the manifest is read-modify-write, and this
// registry deliberately has no distributed lock.
//
// Wrap the store in Robust before handing it over: the registry
// assumes typed errors and adds no retries of its own.
type Registry struct {
	store BundleStore
	// Clock is a test hook; time.Now when nil.
	Clock func() time.Time
}

// NewRegistry builds a registry over store.
func NewRegistry(store BundleStore) *Registry { return &Registry{store: store} }

// Store exposes the underlying blob store.
func (r *Registry) Store() BundleStore { return r.store }

func (r *Registry) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

// Manifest loads the current manifest. A registry nobody has published
// to yet returns an empty manifest, not an error.
func (r *Registry) Manifest(ctx context.Context) (*Manifest, error) {
	b, err := r.store.Get(ctx, ManifestKey)
	if errors.Is(err, ErrNotFound) {
		return &Manifest{Schema: manifestSchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeManifest(b)
}

func (r *Registry) saveManifest(ctx context.Context, m *Manifest) error {
	m.Schema = manifestSchemaVersion
	b, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	return r.store.Put(ctx, ManifestKey, b)
}

// Publish stores bundle under its content address and appends a new
// generation to the lineage — without promoting it; rollout is a
// separate, deliberate step. Publishing bytes whose digest is already
// in the lineage is idempotent and returns the existing generation:
// content addressing makes "same model twice" a no-op, not a
// duplicate. The bundle bytes must be a valid RHEODUR1 bundle
// container; anything else is rejected before touching the store.
func (r *Registry) Publish(ctx context.Context, bundle []byte, note string) (Generation, error) {
	digest, err := pipeline.BundleDigest(bundle)
	if err != nil {
		return Generation{}, fmt.Errorf("storage: publish: %w", err)
	}
	m, err := r.Manifest(ctx)
	if err != nil {
		return Generation{}, err
	}
	for _, g := range m.Generations {
		if g.Digest == digest {
			return g, nil
		}
	}
	if err := r.store.Put(ctx, BundleKey(digest), bundle); err != nil {
		return Generation{}, err
	}
	var maxID int64
	for _, g := range m.Generations {
		if g.ID > maxID {
			maxID = g.ID
		}
	}
	gen := Generation{
		ID:          maxID + 1,
		Digest:      digest,
		Size:        int64(len(bundle)),
		Note:        note,
		CreatedUnix: r.now().Unix(),
	}
	m.Generations = append(m.Generations, gen)
	if err := r.saveManifest(ctx, m); err != nil {
		return Generation{}, err
	}
	return gen, nil
}

// Promote makes generation id the one the fleet converges to. The
// bundle must exist in the store — a manifest must never point readers
// at bytes that are not there.
func (r *Registry) Promote(ctx context.Context, id int64) error {
	m, err := r.Manifest(ctx)
	if err != nil {
		return err
	}
	g, ok := m.generation(id)
	if !ok {
		return fmt.Errorf("storage: promote generation %d: %w", id, ErrNotFound)
	}
	if _, err := r.store.Stat(ctx, BundleKey(g.Digest)); err != nil {
		return fmt.Errorf("storage: promote generation %d: bundle blob: %w", id, err)
	}
	if m.Promoted == id {
		// Re-promotion is a no-op, and deliberately skips the manifest
		// write: a refit controller replaying its promote step after a
		// crash must converge without churning the manifest blob (every
		// write is a window a concurrent reader could see torn on a
		// non-atomic store).
		return nil
	}
	m.Previous = m.Promoted
	m.Promoted = id
	return r.saveManifest(ctx, m)
}

// Rollback re-promotes the previously promoted generation and returns
// its ID. With no previous generation it fails with ErrNoPromoted.
func (r *Registry) Rollback(ctx context.Context) (int64, error) {
	m, err := r.Manifest(ctx)
	if err != nil {
		return 0, err
	}
	if m.Previous == 0 {
		return 0, fmt.Errorf("storage: rollback: no previous generation: %w", ErrNoPromoted)
	}
	target := m.Previous
	m.Previous = m.Promoted
	m.Promoted = target
	if err := r.saveManifest(ctx, m); err != nil {
		return 0, err
	}
	return target, nil
}

// Pin sets or clears a generation's pinned flag.
func (r *Registry) Pin(ctx context.Context, id int64, pinned bool) error {
	m, err := r.Manifest(ctx)
	if err != nil {
		return err
	}
	g, ok := m.generation(id)
	if !ok {
		return fmt.Errorf("storage: pin generation %d: %w", id, ErrNotFound)
	}
	g.Pinned = pinned
	return r.saveManifest(ctx, m)
}

// Generation returns the lineage entry for id.
func (r *Registry) Generation(ctx context.Context, id int64) (Generation, error) {
	m, err := r.Manifest(ctx)
	if err != nil {
		return Generation{}, err
	}
	g, ok := m.generation(id)
	if !ok {
		return Generation{}, fmt.Errorf("storage: generation %d: %w", id, ErrNotFound)
	}
	return *g, nil
}

// Promoted returns the currently promoted generation, or ErrNoPromoted
// when the registry has never had a rollout.
func (r *Registry) Promoted(ctx context.Context) (Generation, error) {
	m, err := r.Manifest(ctx)
	if err != nil {
		return Generation{}, err
	}
	if m.Promoted == 0 {
		return Generation{}, ErrNoPromoted
	}
	g, ok := m.generation(m.Promoted)
	if !ok {
		// DecodeManifest rejects this shape; reaching it means the
		// in-memory manifest was mutated. Treat as corruption.
		return Generation{}, fmt.Errorf("storage: promoted generation %d missing from lineage: %w",
			m.Promoted, ErrManifestCorrupt)
	}
	return *g, nil
}

// Fetch retrieves gen's bundle bytes and verifies them against the
// generation's content address — the container parses and its payload
// hashes to the digest the blob was published under. Bytes that fail
// verification never reach the caller; the error wraps
// ErrDigestMismatch so serving code can refuse the swap and keep the
// model it has.
func (r *Registry) Fetch(ctx context.Context, gen Generation) ([]byte, error) {
	b, err := r.store.Get(ctx, BundleKey(gen.Digest))
	if err != nil {
		return nil, err
	}
	digest, err := pipeline.BundleDigest(b)
	if err != nil {
		return nil, fmt.Errorf("storage: fetched bundle for generation %d unreadable: %w: %w",
			gen.ID, ErrDigestMismatch, err)
	}
	if digest != gen.Digest {
		return nil, fmt.Errorf("storage: generation %d: stored digest %.12s, content hashes to %.12s: %w",
			gen.ID, gen.Digest, digest, ErrDigestMismatch)
	}
	return b, nil
}
