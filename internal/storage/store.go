// Package storage persists fitted model bundles behind a pluggable
// blob-store interface and layers a generation registry on top of it —
// the machinery that lets a fleet of textureserver replicas follow one
// published model lineage instead of each owning a private file.
//
// The layering, bottom to top:
//
//   - BundleStore: a dumb flat blob store (Put/Get/Stat/List). Two
//     backends ship: FSStore (local directory, atomic temp+fsync+rename
//     writes reusing the pipeline's durability idiom) and KVStore (an
//     in-process map with injectable latency/error faults — the test
//     double every degraded-mode scenario is built on).
//   - Robust: the robustness envelope wrapped around any backend:
//     per-op timeouts, jittered retry with backoff, a circuit breaker,
//     and storage_ops_total / storage_op_seconds metrics. Every error
//     out of Robust is typed: ErrNotFound, ErrDigestMismatch, or
//     ErrStoreUnavailable.
//   - Registry: generations of content-addressed bundles (the address
//     is the RHEODUR1 container's SHA-256 payload digest) plus a JSON
//     manifest — itself digest-guarded — recording which generation is
//     promoted. Publish/Promote/Rollback/Pin on the write side;
//     Promoted/Fetch with digest verification on the read side.
package storage

import (
	"context"
	"errors"
)

// Typed errors. Every failure leaving this package wraps one of these,
// so callers can route on the class — "ask again later"
// (ErrStoreUnavailable), "that object does not exist" (ErrNotFound),
// "the bytes came back wrong" (ErrDigestMismatch) — without parsing
// strings.
var (
	// ErrNotFound marks a key with no object behind it. Not a backend
	// fault: it is never retried and never trips the circuit breaker.
	ErrNotFound = errors.New("storage: object not found")
	// ErrStoreUnavailable marks a backend that cannot currently answer:
	// transport errors, per-op timeouts, and an open circuit breaker
	// all collapse into it.
	ErrStoreUnavailable = errors.New("storage: backend unavailable")
	// ErrDigestMismatch marks content that does not hash to the digest
	// it was addressed by — a torn write, bit rot, or a mislabelled
	// object. Serving code must refuse such bytes.
	ErrDigestMismatch = errors.New("storage: content digest mismatch")
)

// ObjectInfo describes a stored object without fetching its bytes.
type ObjectInfo struct {
	Key  string
	Size int64
}

// BundleStore is the pluggable persistence surface: a flat blob store
// keyed by slash-separated names. Implementations must be safe for
// concurrent use and must make Put atomic — a reader never observes a
// half-written object under a key.
//
// Keys are chosen by the Registry layer; backends treat them as opaque
// (FSStore maps them to relative paths, so "..", absolute paths and
// empty segments are rejected).
type BundleStore interface {
	// Put stores data under key, replacing any existing object.
	Put(ctx context.Context, key string, data []byte) error
	// Get returns the object's bytes, or an error wrapping ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Stat returns the object's metadata, or an error wrapping
	// ErrNotFound — a cheap existence probe before a large Get.
	Stat(ctx context.Context, key string) (ObjectInfo, error)
	// List returns the keys under prefix, in unspecified order.
	List(ctx context.Context, prefix string) ([]string, error)
	// Name identifies the backend in metrics and logs ("fs", "kv").
	Name() string
}
