package storage

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"strings"

	"repro/internal/pipeline"
)

// FSStore is the local-filesystem backend: objects live as files under
// Root, written with the pipeline's crash-safe atomic idiom (temp file
// in the destination directory, fsync, rename, directory fsync), so a
// replica reading an object never sees a torn write even if the
// publisher dies mid-Put.
//
// The zero value is unusable; set Root. Open creates the root
// directory eagerly (and Put creates nested directories as needed), so
// a root that goes missing afterwards reads as an outage
// (ErrStoreUnavailable), not as every object being absent.
type FSStore struct {
	Root string
}

// NewFSStore builds a store rooted at dir.
func NewFSStore(dir string) *FSStore { return &FSStore{Root: dir} }

// Name identifies the backend in metrics.
func (s *FSStore) Name() string { return "fs" }

// keyPath maps a store key to a file path under Root, refusing keys
// that would escape it. Keys are slash-separated regardless of OS.
func (s *FSStore) keyPath(key string) (string, error) {
	if s.Root == "" {
		return "", fmt.Errorf("storage: FSStore has no root directory: %w", ErrStoreUnavailable)
	}
	if key == "" || strings.HasPrefix(key, "/") || path.Clean(key) != key ||
		key == ".." || strings.HasPrefix(key, "../") {
		return "", fmt.Errorf("storage: invalid key %q: %w", key, ErrNotFound)
	}
	return filepath.Join(s.Root, filepath.FromSlash(key)), nil
}

// wrapFSErr classifies a filesystem error. A missing file under a
// present root is the caller's problem (ErrNotFound) — but a missing
// file under a missing root is an unmounted volume or deleted store,
// and "not found" would make an outage look like an empty registry.
// Root presence disambiguates: gone root → ErrStoreUnavailable.
func (s *FSStore) wrapFSErr(op, key string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		if _, rerr := os.Stat(s.Root); rerr != nil {
			return fmt.Errorf("storage: fs %s %q: store root %q unreachable: %w: %w",
				op, key, s.Root, ErrStoreUnavailable, rerr)
		}
		return fmt.Errorf("storage: fs %s %q: %w", op, key, ErrNotFound)
	}
	return fmt.Errorf("storage: fs %s %q: %w: %w", op, key, ErrStoreUnavailable, err)
}

// Put writes data under key atomically.
func (s *FSStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.keyPath(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: fs put %q: %w: %w", key, ErrStoreUnavailable, err)
	}
	err = pipeline.AtomicWriteFile(p, func(w *bufio.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return fmt.Errorf("storage: fs put %q: %w: %w", key, ErrStoreUnavailable, err)
	}
	return nil
}

// Get reads the object under key.
func (s *FSStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.keyPath(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, s.wrapFSErr("get", key, err)
	}
	return data, nil
}

// Stat probes the object under key without reading it.
func (s *FSStore) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return ObjectInfo{}, err
	}
	p, err := s.keyPath(key)
	if err != nil {
		return ObjectInfo{}, err
	}
	info, err := os.Stat(p)
	if err != nil {
		return ObjectInfo{}, s.wrapFSErr("stat", key, err)
	}
	if info.IsDir() {
		return ObjectInfo{}, fmt.Errorf("storage: fs stat %q: is a directory: %w", key, ErrNotFound)
	}
	return ObjectInfo{Key: key, Size: info.Size()}, nil
}

// List walks Root and returns every object key under prefix. In-flight
// atomic-write temp files are skipped — they are not objects yet. An
// existing but empty root lists empty; a missing root is an outage
// (Open creates the root, so its absence means the volume went away).
func (s *FSStore) List(ctx context.Context, prefix string) ([]string, error) {
	if s.Root == "" {
		return nil, fmt.Errorf("storage: FSStore has no root directory: %w", ErrStoreUnavailable)
	}
	var keys []string
	err := filepath.WalkDir(s.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() || strings.Contains(d.Name(), ".tmp-") {
			return nil
		}
		rel, rerr := filepath.Rel(s.Root, p)
		if rerr != nil {
			return rerr
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if errors.Is(err, fs.ErrNotExist) {
		if _, rerr := os.Stat(s.Root); rerr != nil {
			return nil, fmt.Errorf("storage: fs list %q: store root %q unreachable: %w: %w",
				prefix, s.Root, ErrStoreUnavailable, rerr)
		}
		return nil, nil
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("storage: fs list %q: %w: %w", prefix, ErrStoreUnavailable, err)
	}
	return keys, nil
}
