package storage

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// RobustOptions tunes the robustness envelope around a backend. The
// zero value selects serving-shaped defaults.
type RobustOptions struct {
	// OpTimeout bounds one backend attempt (not the whole retried
	// call). Default 2s.
	OpTimeout time.Duration
	// Retry is the jittered backoff schedule for transport-class
	// failures. ErrNotFound and ErrDigestMismatch are never retried —
	// the backend answered; the answer just wasn't an object. Default:
	// 3 attempts, 25ms base, 250ms cap.
	Retry resilience.Backoff
	// BreakerThreshold is the consecutive post-retry failures that open
	// the circuit. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the open circuit rejects before a
	// probe. Default 1s. Keep it at or below the registry poll interval
	// so a recovered backend is probed on the next poll, not the one
	// after.
	BreakerCooldown time.Duration
	// Metrics, when set, records storage_ops_total{backend,op,outcome}
	// and the storage_op_seconds{backend,op} histogram.
	Metrics *obs.Registry
}

func (o RobustOptions) withDefaults() RobustOptions {
	if o.OpTimeout <= 0 {
		o.OpTimeout = 2 * time.Second
	}
	if o.Retry.Attempts < 1 {
		o.Retry = resilience.Backoff{Attempts: 3, Base: 25 * time.Millisecond, Max: 250 * time.Millisecond, Seed: 0xD15C}
	}
	if o.BreakerThreshold < 1 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	return o
}

// Robust wraps a BundleStore in the repo's robustness envelope:
// per-attempt timeouts, jittered retry for transport errors, a circuit
// breaker that fails fast once the backend is clearly down, and typed
// errors — every failure leaving Robust wraps ErrNotFound,
// ErrDigestMismatch or ErrStoreUnavailable.
type Robust struct {
	inner   BundleStore
	opts    RobustOptions
	breaker *resilience.Breaker

	reg     *obs.Registry
	seconds map[string]*obs.Histogram
}

// NewRobust wraps inner. The breaker is shared by all four operations:
// the unit of health is the backend, not the verb.
func NewRobust(inner BundleStore, opts RobustOptions) *Robust {
	opts = opts.withDefaults()
	r := &Robust{
		inner:   inner,
		opts:    opts,
		breaker: resilience.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		reg:     opts.Metrics,
	}
	if r.reg != nil {
		r.seconds = make(map[string]*obs.Histogram, 4)
		for _, op := range []string{"put", "get", "stat", "list"} {
			r.seconds[op] = r.reg.Histogram("storage_op_seconds",
				"Bundle-store operation wall time, including retries.", nil,
				obs.Labels{"backend": inner.Name(), "op": op})
		}
	}
	return r
}

// Name reports the wrapped backend's name — Robust is an envelope, not
// a backend of its own.
func (r *Robust) Name() string { return r.inner.Name() }

// Breaker exposes the circuit for status reporting.
func (r *Robust) Breaker() *resilience.Breaker { return r.breaker }

func (r *Robust) count(op, outcome string) {
	if r.reg == nil {
		return
	}
	r.reg.Counter("storage_ops_total",
		"Bundle-store operations by backend, op and outcome.",
		obs.Labels{"backend": r.inner.Name(), "op": op, "outcome": outcome}).Inc()
}

// permanentErr reports whether err is an answer rather than an outage:
// retrying will not change it, and it must not poison the breaker.
func permanentErr(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrDigestMismatch)
}

// do runs one logical operation through the envelope.
func (r *Robust) do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	start := time.Now()
	defer func() {
		if h, ok := r.seconds[op]; ok {
			h.Observe(time.Since(start).Seconds())
		}
	}()

	if err := r.breaker.Allow(); err != nil {
		r.count(op, "rejected")
		return fmt.Errorf("storage: %s %s: %w: %w", r.inner.Name(), op, ErrStoreUnavailable, err)
	}

	var permanent error
	err := resilience.Retry(ctx, r.opts.Retry, func(ctx context.Context) error {
		attemptCtx, cancel := context.WithTimeout(ctx, r.opts.OpTimeout)
		defer cancel()
		err := fn(attemptCtx)
		switch {
		case err == nil:
			return nil
		case permanentErr(err):
			// The backend answered; stop retrying and report it as-is.
			permanent = err
			return nil
		case attemptCtx.Err() != nil && ctx.Err() == nil:
			// The per-attempt deadline fired (the caller's context is
			// alive): a slow backend is an unavailable backend.
			return fmt.Errorf("attempt timed out after %v: %w", r.opts.OpTimeout, err)
		default:
			return err
		}
	})

	switch {
	case permanent != nil:
		r.breaker.Success()
		if errors.Is(permanent, ErrNotFound) {
			r.count(op, "not_found")
		} else {
			r.count(op, "mismatch")
		}
		return permanent
	case err == nil:
		r.breaker.Success()
		r.count(op, "ok")
		return nil
	case ctx.Err() != nil:
		// The caller gave up; that says nothing about backend health.
		r.count(op, "canceled")
		return err
	default:
		r.breaker.Failure()
		r.count(op, "error")
		if errors.Is(err, ErrStoreUnavailable) {
			return err
		}
		return fmt.Errorf("storage: %s %s: %w: %w", r.inner.Name(), op, ErrStoreUnavailable, err)
	}
}

// Put stores data under key through the envelope.
func (r *Robust) Put(ctx context.Context, key string, data []byte) error {
	return r.do(ctx, "put", func(ctx context.Context) error {
		return r.inner.Put(ctx, key, data)
	})
}

// Get fetches the object under key through the envelope.
func (r *Robust) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := r.do(ctx, "get", func(ctx context.Context) error {
		b, err := r.inner.Get(ctx, key)
		out = b
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stat probes the object under key through the envelope.
func (r *Robust) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	var out ObjectInfo
	err := r.do(ctx, "stat", func(ctx context.Context) error {
		info, err := r.inner.Stat(ctx, key)
		out = info
		return err
	})
	if err != nil {
		return ObjectInfo{}, err
	}
	return out, nil
}

// List enumerates keys under prefix through the envelope.
func (r *Robust) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := r.do(ctx, "list", func(ctx context.Context) error {
		keys, err := r.inner.List(ctx, prefix)
		out = keys
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
