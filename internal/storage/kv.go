package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/resilience"
)

// KVStore is the in-process key-value backend: a mutex-guarded map
// with the failure surface of a real remote store bolted on. Faults
// injects scripted latency, errors and panics per operation (ops
// "kv.put", "kv.get", "kv.stat", "kv.list"), and Mangle lets a test
// corrupt bytes on the way out — torn reads, bit rot, a proxy
// truncating a response. Production code would use it only as an
// ephemeral demo backend; its real job is making every degraded-mode
// path in the registry and the serving fleet exercisable in-process.
type KVStore struct {
	// Faults injects delay/error faults before each operation touches
	// the map. Nil injects nothing.
	Faults resilience.Injector
	// Mangle, when set, transforms the stored bytes returned by Get —
	// the hook for simulating payload corruption in transit. It must
	// not mutate its input.
	Mangle func(key string, data []byte) []byte

	mu      sync.RWMutex
	objects map[string][]byte
	calls   map[string]int64
}

// NewKVStore builds an empty in-process store.
func NewKVStore() *KVStore {
	return &KVStore{objects: map[string][]byte{}, calls: map[string]int64{}}
}

// Name identifies the backend in metrics.
func (s *KVStore) Name() string { return "kv" }

// Calls reports how many times op ("put", "get", "stat", "list")
// reached the backing map — faults that error before the map count
// too, since a real remote would still see the request. Tests use it
// to prove a breaker stopped hammering a dead backend.
func (s *KVStore) Calls(op string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.calls[op]
}

func (s *KVStore) enter(ctx context.Context, op string) error {
	s.mu.Lock()
	s.calls[op]++
	s.mu.Unlock()
	return resilience.Inject(ctx, s.Faults, "kv."+op)
}

// Put stores a copy of data under key.
func (s *KVStore) Put(ctx context.Context, key string, data []byte) error {
	if err := s.enter(ctx, "put"); err != nil {
		return fmt.Errorf("storage: kv put %q: %w", key, err)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.objects[key] = cp
	s.mu.Unlock()
	return nil
}

// Get returns a copy of the object under key.
func (s *KVStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.enter(ctx, "get"); err != nil {
		return nil, fmt.Errorf("storage: kv get %q: %w", key, err)
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: kv get %q: %w", key, ErrNotFound)
	}
	if s.Mangle != nil {
		data = s.Mangle(key, data)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Stat probes the object under key.
func (s *KVStore) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := s.enter(ctx, "stat"); err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: kv stat %q: %w", key, err)
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return ObjectInfo{}, fmt.Errorf("storage: kv stat %q: %w", key, ErrNotFound)
	}
	return ObjectInfo{Key: key, Size: int64(len(data))}, nil
}

// List returns the keys under prefix, sorted for determinism.
func (s *KVStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.enter(ctx, "list"); err != nil {
		return nil, fmt.Errorf("storage: kv list %q: %w", prefix, err)
	}
	s.mu.RLock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the object under key (test helper; not part of the
// BundleStore contract — the registry never deletes, it supersedes).
func (s *KVStore) Delete(key string) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}
