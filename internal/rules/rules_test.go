package rules

import (
	"math"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// toyTxs: A strongly implies X; B weakly implies X; C never.
func toyTxs() []Transaction {
	var txs []Transaction
	for i := 0; i < 80; i++ {
		txs = append(txs, Transaction{"A", "X"})
	}
	for i := 0; i < 20; i++ {
		txs = append(txs, Transaction{"A", "Y"})
	}
	for i := 0; i < 50; i++ {
		txs = append(txs, Transaction{"B", "X"})
	}
	for i := 0; i < 50; i++ {
		txs = append(txs, Transaction{"B"})
	}
	for i := 0; i < 100; i++ {
		txs = append(txs, Transaction{"C", "Y"})
	}
	return txs
}

func TestMineFindsStrongRule(t *testing.T) {
	cfg := Config{MinSupport: 0.05, MinConfidence: 0.7, MinLift: 1.1, MaxAntecedent: 2,
		Consequents: []string{"X", "Y"}}
	rules, err := Mine(toyTxs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Rule{}
	for _, r := range rules {
		byKey[strings.Join(r.Antecedent, ",")+"=>"+r.Consequent] = r
	}
	ax, ok := byKey["A=>X"]
	if !ok {
		t.Fatalf("A⇒X not found; rules = %v", rules)
	}
	if math.Abs(ax.Confidence-0.8) > 1e-9 {
		t.Errorf("conf(A⇒X) = %g, want 0.8", ax.Confidence)
	}
	// support(X) = 130/300; lift = 0.8/(130/300).
	wantLift := 0.8 / (130.0 / 300.0)
	if math.Abs(ax.Lift-wantLift) > 1e-9 {
		t.Errorf("lift = %g, want %g", ax.Lift, wantLift)
	}
	// B⇒X has confidence 0.5 < 0.7: filtered.
	if _, ok := byKey["B=>X"]; ok {
		t.Error("B⇒X should be below confidence threshold")
	}
	// C⇒Y is strong.
	if _, ok := byKey["C=>Y"]; !ok {
		t.Error("C⇒Y missing")
	}
}

func TestMinePairAntecedents(t *testing.T) {
	var txs []Transaction
	// X fires only when both A and B are present.
	for i := 0; i < 50; i++ {
		txs = append(txs, Transaction{"A", "B", "X"})
	}
	for i := 0; i < 50; i++ {
		txs = append(txs, Transaction{"A", "Y"})
	}
	for i := 0; i < 50; i++ {
		txs = append(txs, Transaction{"B", "Y"})
	}
	cfg := Config{MinSupport: 0.05, MinConfidence: 0.9, MinLift: 1.0, MaxAntecedent: 2,
		Consequents: []string{"X", "Y"}}
	rules, err := Mine(txs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 2 && r.Antecedent[0] == "A" && r.Antecedent[1] == "B" && r.Consequent == "X" {
			found = true
			if r.Confidence != 1 {
				t.Errorf("conf = %g", r.Confidence)
			}
		}
		if len(r.Antecedent) == 1 && (r.Antecedent[0] == "A" || r.Antecedent[0] == "B") && r.Consequent == "X" {
			t.Errorf("single-item rule %v should miss the confidence bar", r)
		}
	}
	if !found {
		t.Error("{A,B}⇒X not found")
	}
}

func TestMineSortedByLift(t *testing.T) {
	rules, err := Mine(toyTxs(), Config{MinSupport: 0.01, MinConfidence: 0.1, MinLift: 0,
		MaxAntecedent: 2, Consequents: []string{"X", "Y"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Lift > rules[i-1].Lift+1e-12 {
			t.Fatal("rules not sorted by lift")
		}
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(nil, DefaultConfig()); err == nil {
		t.Error("empty transactions should fail")
	}
	cfg := DefaultConfig()
	cfg.Consequents = []string{"X"}
	cfg.MinSupport = 0
	if _, err := Mine(toyTxs(), cfg); err == nil {
		t.Error("zero support should fail")
	}
	cfg = DefaultConfig()
	if _, err := Mine(toyTxs(), cfg); err == nil {
		t.Error("missing consequents should fail")
	}
}

func TestFeaturize(t *testing.T) {
	r := &recipe.Recipe{
		ID:          "f1",
		Description: "かたくてどっしりしたおやつ",
		Ingredients: []recipe.Ingredient{
			{Name: "粉寒天", Amount: "10g"},
			{Name: "牛乳", Amount: "100ml"},
			{Name: "水", Amount: "290ml"},
		},
		Steps: []string{"寒天を煮とかし、沸騰させる。", "型にながして常温でかためる。"},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	tx := Featurize(r, lexicon.Default())
	want := map[string]bool{
		"gel:kanten-high": true, // 10/405 ≈ 2.5%
		"emu:milk":        true, // ~25%
		"step:boil":       true,
		"step:room-set":   true,
		"reads:hard":      true,
	}
	have := map[string]bool{}
	for _, item := range tx {
		have[item] = true
	}
	for item := range want {
		if !have[item] {
			t.Errorf("missing item %s in %v", item, tx)
		}
	}
	if have["reads:soft"] {
		t.Error("soft should not fire")
	}
}

func TestDoseBand(t *testing.T) {
	cases := map[float64]string{0: "", 0.0005: "", 0.005: "low", 0.015: "mid", 0.05: "high"}
	for c, want := range cases {
		if got := doseBand(c); got != want {
			t.Errorf("doseBand(%g) = %q, want %q", c, got, want)
		}
	}
}

func TestMineTextureOnCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.Scale = 0.4
	rs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineTexture(rs, lexicon.Default(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("no rules mined")
	}
	// The headline food-science facts must surface: high kanten reads
	// hard; whipping predicts a soft read.
	var kantenHard, whipSoft bool
	for _, r := range mined {
		key := strings.Join(r.Antecedent, ",")
		if strings.Contains(key, "gel:kanten-high") && r.Consequent == "reads:hard" {
			kantenHard = true
		}
		if strings.Contains(key, "step:whip") && r.Consequent == "reads:soft" {
			whipSoft = true
		}
	}
	if !kantenHard {
		t.Errorf("kanten-high ⇒ hard not mined; top rules:\n%s", Render(mined, 15))
	}
	if !whipSoft {
		t.Errorf("whip ⇒ soft not mined; top rules:\n%s", Render(mined, 15))
	}
	if s := Render(mined, 5); !strings.Contains(s, "⇒") {
		t.Error("render")
	}
}

func TestEvaluateHeldOutRules(t *testing.T) {
	// Train and test from the same distribution: rules generalize.
	train := toyTxs()
	test := toyTxs()
	cfg := Config{MinSupport: 0.05, MinConfidence: 0.7, MinLift: 1.1, MaxAntecedent: 2,
		Consequents: []string{"X", "Y"}}
	mined, err := Mine(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := Evaluate(mined, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(mined) {
		t.Fatalf("%d scores for %d rules", len(scores), len(mined))
	}
	for _, sc := range scores {
		if sc.Matched == 0 {
			t.Errorf("rule %v never fired on identical-distribution data", sc.Rule)
			continue
		}
		if math.Abs(sc.Precision-sc.Rule.Confidence) > 1e-9 {
			t.Errorf("rule %v precision %g != training confidence %g on identical data",
				sc.Rule, sc.Precision, sc.Rule.Confidence)
		}
	}
	if g := MeanGeneralization(scores, 1); math.Abs(g-1) > 1e-9 {
		t.Errorf("generalization = %g, want 1 on identical data", g)
	}
	// Validation.
	if _, err := Evaluate(mined, nil); err == nil {
		t.Error("empty held-out should fail")
	}
	if !math.IsNaN(MeanGeneralization(nil, 1)) {
		t.Error("no scores should give NaN")
	}
}

func TestRulesGeneralizeAcrossCorpusSeeds(t *testing.T) {
	dict := lexicon.Default()
	trainCfg := corpus.DefaultConfig()
	trainCfg.Scale = 0.4
	trainRecipes, err := corpus.Generate(trainCfg)
	if err != nil {
		t.Fatal(err)
	}
	testCfg := trainCfg
	testCfg.Seed = 1234
	testRecipes, err := corpus.Generate(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineTexture(trainRecipes, dict, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var testTxs []Transaction
	for _, r := range testRecipes {
		testTxs = append(testTxs, Featurize(r, dict))
	}
	scores, err := Evaluate(mined, testTxs)
	if err != nil {
		t.Fatal(err)
	}
	if g := MeanGeneralization(scores, 5); math.IsNaN(g) || g < 0.85 {
		t.Errorf("rules generalize at %.3f, want ≥ 0.85", g)
	}
}
