package rules

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// Texture transaction item namespaces.
const (
	itemGelPrefix   = "gel:"   // gel:gelatin-low … gel:kanten-high
	itemEmuPrefix   = "emu:"   // emu:cream (present above threshold)
	itemStepPrefix  = "step:"  // step:boil, step:whip, step:chill, step:room-set
	itemReadsPrefix = "reads:" // reads:hard … (consequents)
)

// emuPresence is the weight share above which an emulsion counts as
// present.
const emuPresence = 0.02

// Consequents are the texture outcomes rules may predict.
func Consequents() []string {
	return []string{
		itemReadsPrefix + "hard", itemReadsPrefix + "soft",
		itemReadsPrefix + "elastic", itemReadsPrefix + "cohesive",
		itemReadsPrefix + "sticky",
	}
}

// Transaction featurizes one resolved recipe: dose-banded gels,
// emulsion presence, step keywords, and — as consequents — the sense
// categories of the texture terms in its description.
func Featurize(r *recipe.Recipe, dict *lexicon.Dictionary) Transaction {
	var tx Transaction
	gels := r.GelConcentrations()
	for g := recipe.Gel(0); g < recipe.NumGels; g++ {
		if band := doseBand(gels[g]); band != "" {
			tx = append(tx, itemGelPrefix+g.String()+"-"+band)
		}
	}
	emus := r.EmulsionConcentrations()
	names := []string{"sugar", "albumen", "yolk", "cream", "milk", "yogurt"}
	for e := recipe.Emulsion(0); e < recipe.NumEmulsions; e++ {
		if emus[e] >= emuPresence {
			tx = append(tx, itemEmuPrefix+names[e])
		}
	}
	for _, kw := range stepKeywords(r.Steps) {
		tx = append(tx, itemStepPrefix+kw)
	}
	counts := dict.SenseCounts(dict.ExtractTermIDs(r.Description))
	for sense, item := range map[lexicon.SenseClass]string{
		lexicon.SenseHard:     "hard",
		lexicon.SenseSoft:     "soft",
		lexicon.SenseElastic:  "elastic",
		lexicon.SenseCohesive: "cohesive",
		lexicon.SenseSticky:   "sticky",
	} {
		if counts[sense] > 0 {
			tx = append(tx, itemReadsPrefix+item)
		}
	}
	return tx
}

// doseBand discretizes a gel weight ratio. The bands straddle the
// functional ranges of Table I: below 0.1% is trace, up to 1% low, up
// to 1.8% mid, above high (the paper's firm-kanten topic sits at 2.1%,
// so the high band opens just below it).
func doseBand(c float64) string {
	switch {
	case c < 0.001:
		return ""
	case c < 0.01:
		return "low"
	case c < 0.018:
		return "mid"
	default:
		return "high"
	}
}

// stepKeywords maps instruction text to canonical process keywords.
func stepKeywords(steps []string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(kw string) {
		if !seen[kw] {
			seen[kw] = true
			out = append(out, kw)
		}
	}
	for _, s := range steps {
		switch {
		case strings.Contains(s, "沸騰") || strings.Contains(s, "煮"):
			add("boil")
		case strings.Contains(s, "あわだて") || strings.Contains(s, "メレンゲ"):
			add("whip")
		case strings.Contains(s, "れいぞうこ") || strings.Contains(s, "ひやし"):
			add("chill")
		case strings.Contains(s, "常温でかため"):
			add("room-set")
		case strings.Contains(s, "ふやかし"):
			add("bloom")
		}
	}
	return out
}

// MineTexture featurizes the recipes and mines texture rules.
func MineTexture(rs []*recipe.Recipe, dict *lexicon.Dictionary, cfg Config) ([]Rule, error) {
	if len(cfg.Consequents) == 0 {
		cfg.Consequents = Consequents()
	}
	txs := make([]Transaction, 0, len(rs))
	for _, r := range rs {
		if tx := Featurize(r, dict); len(tx) > 0 {
			txs = append(txs, tx)
		}
	}
	return Mine(txs, cfg)
}

// Render prints the top rules as a table.
func Render(rules []Rule, top int) string {
	var sb strings.Builder
	sb.WriteString("texture rules (antecedent ⇒ reads, by lift)\n")
	if top > len(rules) {
		top = len(rules)
	}
	for _, r := range rules[:top] {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}
