package rules

import (
	"fmt"
	"math"
)

// RuleScore is a rule's performance on held-out transactions.
type RuleScore struct {
	Rule       Rule
	Precision  float64 // held-out confidence: P(consequent | antecedent)
	Matched    int     // held-out transactions matching the antecedent
	Generalize float64 // held-out precision / training confidence
}

// Evaluate scores mined rules on held-out transactions: held-out
// precision (the rule's confidence recomputed on unseen data) and the
// generalization ratio. Rules whose antecedents never fire on the
// held-out set get NaN precision and zero matches.
func Evaluate(mined []Rule, heldOut []Transaction) ([]RuleScore, error) {
	if len(heldOut) == 0 {
		return nil, fmt.Errorf("rules: no held-out transactions")
	}
	sets := make([]map[string]bool, len(heldOut))
	for i, tx := range heldOut {
		m := make(map[string]bool, len(tx))
		for _, item := range tx {
			m[item] = true
		}
		sets[i] = m
	}
	out := make([]RuleScore, 0, len(mined))
	for _, r := range mined {
		matched, hit := 0, 0
		for _, tx := range sets {
			if !containsAll(tx, r.Antecedent) {
				continue
			}
			matched++
			if tx[r.Consequent] {
				hit++
			}
		}
		score := RuleScore{Rule: r, Matched: matched, Precision: math.NaN()}
		if matched > 0 {
			score.Precision = float64(hit) / float64(matched)
			if r.Confidence > 0 {
				score.Generalize = score.Precision / r.Confidence
			}
		}
		out = append(out, score)
	}
	return out, nil
}

// MeanGeneralization averages the generalization ratio over rules that
// fired on the held-out data at least minMatched times. A value near 1
// means the rules transfer; well below 1 means they overfit the
// training corpus.
func MeanGeneralization(scores []RuleScore, minMatched int) float64 {
	s, n := 0.0, 0
	for _, sc := range scores {
		if sc.Matched >= minMatched && !math.IsNaN(sc.Precision) {
			s += sc.Generalize
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
