// Package rules implements the paper's stated future work: "detect
// rules bridging between recipe information including ingredient
// concentrations, cooking steps etc., and sensory textures of
// consumers". It provides a targeted Apriori association-rule miner
// over item transactions and a texture-specific featurizer that turns
// recipes into transactions (gel dose bands, emulsion presence, step
// keywords) with the texture sense categories as rule consequents.
package rules

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is one itemset (one recipe's features plus outcomes).
type Transaction []string

// Rule is an association rule antecedent ⇒ consequent.
type Rule struct {
	Antecedent []string
	Consequent string
	Support    float64 // fraction of transactions containing antecedent ∪ consequent
	Confidence float64 // support / support(antecedent)
	Lift       float64 // confidence / support(consequent)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("{%s} ⇒ %s  (supp %.3f, conf %.2f, lift %.2f)",
		strings.Join(r.Antecedent, ", "), r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Config bounds the search.
type Config struct {
	MinSupport    float64 // minimum rule support
	MinConfidence float64
	MinLift       float64
	MaxAntecedent int // maximum antecedent size
	// Consequents restricts rule heads to these items; antecedents never
	// contain them. Required: untargeted mining over texture data mostly
	// rediscovers the featurizer.
	Consequents []string
}

// DefaultConfig mines reasonably strong, small rules. Lift 1.05 keeps
// high-confidence rules whose consequent is common corpus-wide (most
// gel dishes read soft, so even a near-certain whip ⇒ soft rule has
// modest lift).
func DefaultConfig() Config {
	return Config{MinSupport: 0.01, MinConfidence: 0.6, MinLift: 1.05, MaxAntecedent: 2}
}

// Mine runs targeted Apriori over the transactions and returns rules
// sorted by descending lift (ties by confidence, then support, then
// antecedent order for determinism).
func Mine(txs []Transaction, cfg Config) ([]Rule, error) {
	if len(txs) == 0 {
		return nil, fmt.Errorf("rules: no transactions")
	}
	if cfg.MinSupport <= 0 || cfg.MinSupport > 1 {
		return nil, fmt.Errorf("rules: min support %g outside (0,1]", cfg.MinSupport)
	}
	if cfg.MaxAntecedent < 1 {
		return nil, fmt.Errorf("rules: max antecedent size %d", cfg.MaxAntecedent)
	}
	if len(cfg.Consequents) == 0 {
		return nil, fmt.Errorf("rules: no consequents given")
	}
	isConsequent := make(map[string]bool, len(cfg.Consequents))
	for _, c := range cfg.Consequents {
		isConsequent[c] = true
	}

	// Deduplicate items within each transaction.
	n := float64(len(txs))
	sets := make([]map[string]bool, len(txs))
	for i, tx := range txs {
		m := make(map[string]bool, len(tx))
		for _, item := range tx {
			m[item] = true
		}
		sets[i] = m
	}

	// Frequent antecedent itemsets by level (classic Apriori), over
	// non-consequent items only.
	minCount := cfg.MinSupport * n
	counts := make(map[string]int) // canonical key → count
	level := [][]string{}
	for _, tx := range sets {
		for item := range tx {
			if isConsequent[item] {
				continue
			}
			counts[item]++
		}
	}
	var frequent [][]string
	for item, c := range counts {
		if float64(c) >= minCount {
			frequent = append(frequent, []string{item})
		}
	}
	sortItemsets(frequent)
	level = frequent
	all := append([][]string{}, frequent...)

	for size := 2; size <= cfg.MaxAntecedent && len(level) > 0; size++ {
		candidates := joinLevel(level)
		var next [][]string
		for _, cand := range candidates {
			c := 0
			for _, tx := range sets {
				if containsAll(tx, cand) {
					c++
				}
			}
			if float64(c) >= minCount {
				next = append(next, cand)
			}
		}
		sortItemsets(next)
		level = next
		all = append(all, next...)
	}

	// Consequent supports.
	consSupport := make(map[string]float64)
	for _, c := range cfg.Consequents {
		cnt := 0
		for _, tx := range sets {
			if tx[c] {
				cnt++
			}
		}
		consSupport[c] = float64(cnt) / n
	}

	var out []Rule
	for _, ante := range all {
		anteCount := 0
		jointCounts := make(map[string]int)
		for _, tx := range sets {
			if !containsAll(tx, ante) {
				continue
			}
			anteCount++
			for _, c := range cfg.Consequents {
				if tx[c] {
					jointCounts[c]++
				}
			}
		}
		if anteCount == 0 {
			continue
		}
		for _, c := range cfg.Consequents {
			joint := float64(jointCounts[c]) / n
			if joint < cfg.MinSupport {
				continue
			}
			conf := float64(jointCounts[c]) / float64(anteCount)
			if conf < cfg.MinConfidence {
				continue
			}
			lift := 0.0
			if consSupport[c] > 0 {
				lift = conf / consSupport[c]
			}
			if lift < cfg.MinLift {
				continue
			}
			out = append(out, Rule{
				Antecedent: append([]string(nil), ante...),
				Consequent: c,
				Support:    joint,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return strings.Join(out[i].Antecedent, ",") < strings.Join(out[j].Antecedent, ",")
	})
	return out, nil
}

func containsAll(tx map[string]bool, items []string) bool {
	for _, it := range items {
		if !tx[it] {
			return false
		}
	}
	return true
}

func sortItemsets(sets [][]string) {
	for _, s := range sets {
		sort.Strings(s)
	}
	sort.Slice(sets, func(i, j int) bool {
		return strings.Join(sets[i], ",") < strings.Join(sets[j], ",")
	})
}

// joinLevel produces size+1 candidates from frequent size-k itemsets
// sharing a k−1 prefix (sets are sorted).
func joinLevel(level [][]string) [][]string {
	var out [][]string
	seen := make(map[string]bool)
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b) {
				continue
			}
			cand := append(append([]string(nil), a...), b[len(b)-1])
			sort.Strings(cand)
			key := strings.Join(cand, ",")
			if !seen[key] {
				seen[key] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []string) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
