package word2vec

import "sort"

// FilterResult reports the outcome of the gel-relatedness filter for
// one texture term.
type FilterResult struct {
	Term      string
	Excluded  bool
	Offending []string // unrelated ingredient words found among neighbours
}

// Filter applies the paper's exclusion rule: for each texture term,
// inspect its topK nearest neighbours in the embedding space; if any
// neighbour (with similarity at least minSim) is an ingredient word
// unrelated to gels, the term is excluded. A mousse recipe topped with
// nuts may say さくさく, but that describes the nuts — and in the
// embedding, さくさく sits next to ナッツ.
//
// Terms missing from the vocabulary are kept (no evidence against
// them).
func Filter(m *Model, terms []string, unrelatedIngredients []string, topK int, minSim float64) []FilterResult {
	unrelated := make(map[string]bool, len(unrelatedIngredients))
	for _, w := range unrelatedIngredients {
		unrelated[w] = true
	}
	out := make([]FilterResult, 0, len(terms))
	for _, term := range terms {
		res := FilterResult{Term: term}
		if neighbours, err := m.MostSimilar(term, topK); err == nil {
			for _, n := range neighbours {
				if n.Score >= minSim && unrelated[n.Word] {
					res.Offending = append(res.Offending, n.Word)
				}
			}
			res.Excluded = len(res.Offending) > 0
		}
		out = append(out, res)
	}
	return out
}

// FilterContrastive applies the exclusion rule with a contrastive
// margin: a texture term is excluded only when (a) an unrelated
// ingredient word appears among its topK nearest neighbours with
// similarity at least minSim, and (b) the term's best similarity to an
// unrelated ingredient exceeds its best similarity to any gel
// ingredient word by at least margin. The margin protects genuine gel
// terms that merely co-occur with fruit decorations: ぷるぷる sits
// closer to ゼラチン than to いちご, さくさく closer to ナッツ.
func FilterContrastive(m *Model, terms []string, unrelatedIngredients, gelIngredients []string,
	topK int, minSim, margin float64) []FilterResult {
	base := Filter(m, terms, unrelatedIngredients, topK, minSim)
	bestSim := func(term string, words []string) float64 {
		best := -1.0
		for _, w := range words {
			if s, err := m.Similarity(term, w); err == nil && s > best {
				best = s
			}
		}
		return best
	}
	for i := range base {
		if !base[i].Excluded {
			continue
		}
		u := bestSim(base[i].Term, unrelatedIngredients)
		g := bestSim(base[i].Term, gelIngredients)
		if g >= 0 && u-g < margin {
			base[i].Excluded = false
			base[i].Offending = nil
		}
	}
	return base
}

// ExcludedSet projects filter results to the set of excluded terms.
func ExcludedSet(results []FilterResult) map[string]bool {
	out := make(map[string]bool)
	for _, r := range results {
		if r.Excluded {
			out[r.Term] = true
		}
	}
	return out
}

// KeptTerms returns the terms that survived, sorted.
func KeptTerms(results []FilterResult) []string {
	var out []string
	for _, r := range results {
		if !r.Excluded {
			out = append(out, r.Term)
		}
	}
	sort.Strings(out)
	return out
}
