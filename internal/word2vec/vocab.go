// Package word2vec implements skip-gram with negative sampling (SGNS)
// over tokenized recipe descriptions. The paper trains word2vec on all
// retrieved recipe text and excludes texture terms whose nearest
// neighbours include ingredients unrelated to gels (a nut topping
// making a mousse "crispy"); Filter reproduces that rule.
package word2vec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Vocab maps words to dense IDs with corpus frequencies.
type Vocab struct {
	Words  []string
	Counts []int
	index  map[string]int
	total  int

	unigramTable []int // negative-sampling table, counts^(3/4)
}

// negTableSize is the size of the unigram negative-sampling table.
// Small relative to classic word2vec because recipe vocabularies are
// small.
const negTableSize = 1 << 16

// BuildVocab scans sentences and keeps words with count ≥ minCount,
// ordered by descending frequency (ties by first appearance).
func BuildVocab(sentences [][]string, minCount int) *Vocab {
	if minCount < 1 {
		minCount = 1
	}
	counts := make(map[string]int)
	first := make(map[string]int)
	pos := 0
	for _, s := range sentences {
		for _, w := range s {
			if _, seen := counts[w]; !seen {
				first[w] = pos
			}
			counts[w]++
			pos++
		}
	}
	var words []string
	for w, c := range counts {
		if c >= minCount {
			words = append(words, w)
		}
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return first[words[i]] < first[words[j]]
	})
	v := &Vocab{Words: words, index: make(map[string]int, len(words))}
	v.Counts = make([]int, len(words))
	for i, w := range words {
		v.index[w] = i
		v.Counts[i] = counts[w]
		v.total += counts[w]
	}
	v.buildUnigramTable()
	return v
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.Words) }

// ID returns the dense ID of word.
func (v *Vocab) ID(word string) (int, bool) {
	id, ok := v.index[word]
	return id, ok
}

// buildUnigramTable fills the negative-sampling table with word IDs in
// proportion to count^(3/4), the smoothing of Mikolov et al.
func (v *Vocab) buildUnigramTable() {
	if v.Size() == 0 {
		return
	}
	powTotal := 0.0
	for _, c := range v.Counts {
		powTotal += math.Pow(float64(c), 0.75)
	}
	v.unigramTable = make([]int, negTableSize)
	w := 0
	cum := math.Pow(float64(v.Counts[0]), 0.75) / powTotal
	for i := 0; i < negTableSize; i++ {
		v.unigramTable[i] = w
		if float64(i+1)/negTableSize > cum && w < v.Size()-1 {
			w++
			cum += math.Pow(float64(v.Counts[w]), 0.75) / powTotal
		}
	}
}

// sampleNegative draws a word ID from the smoothed unigram
// distribution.
func (v *Vocab) sampleNegative(r *stats.RNG) int {
	return v.unigramTable[r.IntN(len(v.unigramTable))]
}

// subsampleKeepProb is the word-discard rule of Mikolov et al.: very
// frequent words are randomly dropped with probability depending on
// their corpus frequency and the threshold t.
func (v *Vocab) subsampleKeepProb(id int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	f := float64(v.Counts[id]) / float64(v.total)
	p := math.Sqrt(t/f) + t/f
	if p > 1 {
		return 1
	}
	return p
}

// Encode converts a sentence to IDs, dropping out-of-vocabulary words.
func (v *Vocab) Encode(sentence []string) []int {
	out := make([]int, 0, len(sentence))
	for _, w := range sentence {
		if id, ok := v.index[w]; ok {
			out = append(out, id)
		}
	}
	return out
}

// String summarizes the vocabulary.
func (v *Vocab) String() string {
	return fmt.Sprintf("vocab{%d words, %d tokens}", v.Size(), v.total)
}
