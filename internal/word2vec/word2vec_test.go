package word2vec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestBuildVocab(t *testing.T) {
	sents := [][]string{
		{"a", "b", "a", "c"},
		{"a", "b", "d"},
	}
	v := BuildVocab(sents, 1)
	if v.Size() != 4 {
		t.Fatalf("size = %d", v.Size())
	}
	// Most frequent first.
	if v.Words[0] != "a" || v.Counts[0] != 3 {
		t.Errorf("first word = %s (%d)", v.Words[0], v.Counts[0])
	}
	// Ties broken by first appearance: b before c before d.
	if v.Words[1] != "b" {
		t.Errorf("second word = %s", v.Words[1])
	}
	if id, ok := v.ID("c"); !ok || v.Counts[id] != 1 {
		t.Error("lookup c failed")
	}
	if _, ok := v.ID("zzz"); ok {
		t.Error("unexpected hit")
	}
	// MinCount cuts singletons.
	v2 := BuildVocab(sents, 2)
	if v2.Size() != 2 {
		t.Errorf("minCount=2 size = %d", v2.Size())
	}
}

func TestVocabEncode(t *testing.T) {
	v := BuildVocab([][]string{{"x", "y", "x"}}, 1)
	ids := v.Encode([]string{"x", "unknown", "y"})
	if len(ids) != 2 {
		t.Fatalf("encoded %v", ids)
	}
}

func TestNegativeSamplingDistribution(t *testing.T) {
	// Word frequencies 80/15/5: the ^0.75 smoothing compresses the gap
	// but ordering must hold.
	sents := [][]string{}
	for i := 0; i < 80; i++ {
		sents = append(sents, []string{"hi"})
	}
	for i := 0; i < 15; i++ {
		sents = append(sents, []string{"mid"})
	}
	for i := 0; i < 5; i++ {
		sents = append(sents, []string{"lo"})
	}
	v := BuildVocab(sents, 1)
	r := stats.NewRNG(3, 3)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		counts[v.sampleNegative(r)]++
	}
	hi, _ := v.ID("hi")
	mid, _ := v.ID("mid")
	lo, _ := v.ID("lo")
	if !(counts[hi] > counts[mid] && counts[mid] > counts[lo]) {
		t.Errorf("sampling counts %v not ordered by frequency", counts)
	}
	if counts[lo] == 0 {
		t.Error("rare word never sampled")
	}
}

// synthetic corpus with two clusters: "jelly" words co-occur, "nut"
// words co-occur, never across.
func clusteredCorpus() [][]string {
	var sents [][]string
	jelly := []string{"zeri", "purupuru", "gelatin", "yawarakai"}
	nuts := []string{"nuts", "sakusaku", "almond", "kurumi"}
	for i := 0; i < 300; i++ {
		j := append([]string{}, jelly...)
		n := append([]string{}, nuts...)
		// rotate for variety
		k := i % 4
		j[0], j[k] = j[k], j[0]
		n[0], n[k] = n[k], n[0]
		sents = append(sents, j, n)
	}
	return sents
}

func trainTestModel(t *testing.T) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 20
	cfg.MinCount = 1
	cfg.Subsample = 0
	m, err := Train(clusteredCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainSeparatesClusters(t *testing.T) {
	m := trainTestModel(t)
	within, err := m.Similarity("purupuru", "zeri")
	if err != nil {
		t.Fatal(err)
	}
	across, err := m.Similarity("purupuru", "nuts")
	if err != nil {
		t.Fatal(err)
	}
	if within <= across {
		t.Errorf("within-cluster sim %.3f should exceed across-cluster %.3f", within, across)
	}
	// sakusaku's neighbours should include nuts.
	nb, err := m.MostSimilar("sakusaku", 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ws := range nb {
		if ws.Word == "nuts" || ws.Word == "almond" || ws.Word == "kurumi" {
			found = true
		}
	}
	if !found {
		t.Errorf("sakusaku neighbours = %v, want nut words", nb)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 2
	cfg.MinCount = 1
	m1, err := Train(clusteredCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(clusteredCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := m1.Vector("zeri")
	v2, _ := m2.Vector("zeri")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed must give identical embeddings")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("empty corpus should fail")
	}
	bad := DefaultConfig()
	bad.Dim = 0
	if _, err := Train(clusteredCorpus(), bad); err == nil {
		t.Error("zero dim should fail")
	}
	// Vocabulary empties out at high min count.
	high := DefaultConfig()
	high.MinCount = 10000
	if _, err := Train(clusteredCorpus(), high); err == nil {
		t.Error("impossible min count should fail")
	}
}

func TestVectorAndSimilarityErrors(t *testing.T) {
	m := trainTestModel(t)
	if _, ok := m.Vector("missing"); ok {
		t.Error("unexpected vector")
	}
	if _, err := m.Similarity("missing", "zeri"); err == nil {
		t.Error("want error")
	}
	if _, err := m.MostSimilar("missing", 3); err == nil {
		t.Error("want error")
	}
	// Self similarity of any present word with itself is 1.
	if s, err := m.Similarity("zeri", "zeri"); err != nil || s < 0.999 {
		t.Errorf("self sim = %g, %v", s, err)
	}
	// k clamps to vocab size.
	nb, err := m.MostSimilar("zeri", 100)
	if err != nil || len(nb) != m.Vocab.Size()-1 {
		t.Errorf("clamped neighbours = %d", len(nb))
	}
}

func TestFilterExcludesNutTerms(t *testing.T) {
	m := trainTestModel(t)
	results := Filter(m,
		[]string{"purupuru", "sakusaku", "notinvocab"},
		[]string{"nuts", "almond", "kurumi"},
		4, 0.0)
	byTerm := make(map[string]FilterResult)
	for _, r := range results {
		byTerm[r.Term] = r
	}
	if byTerm["purupuru"].Excluded {
		t.Error("purupuru should survive")
	}
	if !byTerm["sakusaku"].Excluded {
		t.Error("sakusaku should be excluded (nut neighbour)")
	}
	if len(byTerm["sakusaku"].Offending) == 0 {
		t.Error("offending neighbours should be reported")
	}
	if byTerm["notinvocab"].Excluded {
		t.Error("OOV terms should be kept")
	}

	ex := ExcludedSet(results)
	if !ex["sakusaku"] || ex["purupuru"] {
		t.Errorf("ExcludedSet = %v", ex)
	}
	kept := KeptTerms(results)
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
}

func TestFilterMinSimGate(t *testing.T) {
	m := trainTestModel(t)
	// With an impossibly high similarity floor nothing is excluded.
	results := Filter(m, []string{"sakusaku"}, []string{"nuts"}, 4, 1.1)
	if results[0].Excluded {
		t.Error("minSim=1.1 should gate everything")
	}
}

func TestSubsampleKeepProb(t *testing.T) {
	sents := [][]string{}
	for i := 0; i < 1000; i++ {
		sents = append(sents, []string{"the", "rare" + fmt.Sprint(i%200)})
	}
	v := BuildVocab(sents, 1)
	the, _ := v.ID("the")
	rare, _ := v.ID("rare0")
	pThe := v.subsampleKeepProb(the, 1e-3)
	pRare := v.subsampleKeepProb(rare, 1e-3)
	if pThe >= pRare {
		t.Errorf("frequent word keep prob %.3f should be below rare %.3f", pThe, pRare)
	}
	if v.subsampleKeepProb(the, 0) != 1 {
		t.Error("threshold 0 disables subsampling")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim || got.Vocab.Size() != m.Vocab.Size() {
		t.Fatalf("shape lost: %d/%d vs %d/%d", got.Dim, got.Vocab.Size(), m.Dim, m.Vocab.Size())
	}
	// Similarity queries identical.
	a1, err := m.Similarity("purupuru", "zeri")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := got.Similarity("purupuru", "zeri")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("similarity drifted: %g vs %g", a1, a2)
	}
	nb1, _ := m.MostSimilar("sakusaku", 3)
	nb2, _ := got.MostSimilar("sakusaku", 3)
	for i := range nb1 {
		if nb1[i].Word != nb2[i].Word {
			t.Errorf("neighbours drifted: %v vs %v", nb1, nb2)
			break
		}
	}
}

func TestReadModelJSONErrors(t *testing.T) {
	for _, payload := range []string{
		"not json",
		`{"version": 9, "dim": 4, "words": ["a"], "counts": [1], "in": [0,0,0,0]}`,
		`{"version": 1, "dim": 4, "words": [], "counts": [], "in": []}`,
		`{"version": 1, "dim": 4, "words": ["a"], "counts": [1,2], "in": [0,0,0,0]}`,
		`{"version": 1, "dim": 4, "words": ["a"], "counts": [1], "in": [0]}`,
		`{"version": 1, "dim": 2, "words": ["a","a"], "counts": [1,1], "in": [0,0,0,0]}`,
	} {
		if _, err := ReadModelJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("payload %q should fail", payload)
		}
	}
}
