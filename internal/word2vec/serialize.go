package word2vec

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonModel is the wire form of a trained model. Only the input
// vectors are persisted — similarity queries never touch the output
// (context) vectors, and dropping them halves the file.
type jsonModel struct {
	Version int       `json:"version"`
	Dim     int       `json:"dim"`
	Words   []string  `json:"words"`
	Counts  []int     `json:"counts"`
	In      []float64 `json:"in"`
}

const modelVersion = 1

// WriteJSON persists the model.
func (m *Model) WriteJSON(w io.Writer) error {
	jm := jsonModel{
		Version: modelVersion,
		Dim:     m.Dim,
		Words:   m.Vocab.Words,
		Counts:  m.Vocab.Counts,
		In:      m.in,
	}
	if err := json.NewEncoder(w).Encode(jm); err != nil {
		return fmt.Errorf("word2vec: encoding model: %w", err)
	}
	return nil
}

// ReadModelJSON loads a model written by WriteJSON. The loaded model
// answers Vector/Similarity/MostSimilar/Filter queries; it cannot be
// trained further (the output vectors are not persisted).
func ReadModelJSON(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("word2vec: decoding model: %w", err)
	}
	if jm.Version != modelVersion {
		return nil, fmt.Errorf("word2vec: model version %d, want %d", jm.Version, modelVersion)
	}
	if jm.Dim <= 0 || len(jm.Words) == 0 {
		return nil, fmt.Errorf("word2vec: empty model")
	}
	if len(jm.Counts) != len(jm.Words) {
		return nil, fmt.Errorf("word2vec: %d counts for %d words", len(jm.Counts), len(jm.Words))
	}
	if len(jm.In) != len(jm.Words)*jm.Dim {
		return nil, fmt.Errorf("word2vec: vector block has %d floats, want %d", len(jm.In), len(jm.Words)*jm.Dim)
	}
	v := &Vocab{Words: jm.Words, Counts: jm.Counts, index: make(map[string]int, len(jm.Words))}
	for i, w := range jm.Words {
		if _, dup := v.index[w]; dup {
			return nil, fmt.Errorf("word2vec: duplicate word %q", w)
		}
		v.index[w] = i
		v.total += jm.Counts[i]
	}
	v.buildUnigramTable()
	return &Model{Vocab: v, Dim: jm.Dim, in: jm.In}, nil
}
