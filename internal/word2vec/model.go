package word2vec

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config controls SGNS training.
type Config struct {
	Dim       int     // embedding dimensionality
	Window    int     // max context offset
	Negatives int     // negative samples per positive pair
	Epochs    int     // passes over the corpus
	LR        float64 // initial learning rate, decays linearly to LR/100
	MinCount  int     // vocabulary frequency cutoff
	Subsample float64 // frequent-word subsampling threshold (0 disables)
	Seed      uint64  // RNG seed
}

// DefaultConfig is sized for recipe-description corpora (small
// vocabulary, short sentences).
func DefaultConfig() Config {
	return Config{
		Dim:       48,
		Window:    4,
		Negatives: 5,
		Epochs:    8,
		LR:        0.05,
		MinCount:  2,
		Subsample: 1e-3,
		Seed:      1,
	}
}

// Model is a trained SGNS model.
type Model struct {
	Vocab *Vocab
	Dim   int
	in    []float64 // input vectors, V×Dim
	out   []float64 // output (context) vectors, V×Dim
}

// Vector returns the input embedding of word, or ok=false if the word
// is out of vocabulary. The returned slice aliases model memory and
// must not be modified.
func (m *Model) Vector(word string) ([]float64, bool) {
	id, ok := m.Vocab.ID(word)
	if !ok {
		return nil, false
	}
	return m.in[id*m.Dim : (id+1)*m.Dim], true
}

// Similarity returns the cosine similarity of two words, or an error
// if either is out of vocabulary.
func (m *Model) Similarity(a, b string) (float64, error) {
	va, ok := m.Vector(a)
	if !ok {
		return 0, fmt.Errorf("word2vec: %q not in vocabulary", a)
	}
	vb, ok := m.Vector(b)
	if !ok {
		return 0, fmt.Errorf("word2vec: %q not in vocabulary", b)
	}
	return cosine(va, vb), nil
}

// WordScore pairs a word with a similarity score.
type WordScore struct {
	Word  string
	Score float64
}

// MostSimilar returns the k nearest words to word by cosine
// similarity, excluding the word itself.
func (m *Model) MostSimilar(word string, k int) ([]WordScore, error) {
	id, ok := m.Vocab.ID(word)
	if !ok {
		return nil, fmt.Errorf("word2vec: %q not in vocabulary", word)
	}
	v := m.in[id*m.Dim : (id+1)*m.Dim]
	scores := make([]WordScore, 0, m.Vocab.Size()-1)
	for j := 0; j < m.Vocab.Size(); j++ {
		if j == id {
			continue
		}
		scores = append(scores, WordScore{
			Word:  m.Vocab.Words[j],
			Score: cosine(v, m.in[j*m.Dim:(j+1)*m.Dim]),
		})
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].Score > scores[b].Score })
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k], nil
}

func cosine(a, b []float64) float64 {
	na, nb := stats.Norm2(a), stats.Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return stats.Dot(a, b) / (na * nb)
}

// Train fits an SGNS model on the sentences. Training is
// single-threaded and deterministic for a given seed.
func Train(sentences [][]string, cfg Config) (*Model, error) {
	if cfg.Dim <= 0 || cfg.Window <= 0 || cfg.Negatives <= 0 || cfg.Epochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("word2vec: invalid config %+v", cfg)
	}
	vocab := BuildVocab(sentences, cfg.MinCount)
	if vocab.Size() == 0 {
		return nil, fmt.Errorf("word2vec: empty vocabulary (min count %d)", cfg.MinCount)
	}
	r := stats.NewRNG(cfg.Seed, 0x77325)
	m := &Model{Vocab: vocab, Dim: cfg.Dim}
	m.in = make([]float64, vocab.Size()*cfg.Dim)
	m.out = make([]float64, vocab.Size()*cfg.Dim)
	for i := range m.in {
		m.in[i] = (r.Float64() - 0.5) / float64(cfg.Dim)
	}

	encoded := make([][]int, 0, len(sentences))
	totalTokens := 0
	for _, s := range sentences {
		ids := vocab.Encode(s)
		if len(ids) > 1 {
			encoded = append(encoded, ids)
			totalTokens += len(ids)
		}
	}
	if totalTokens == 0 {
		return nil, fmt.Errorf("word2vec: no trainable sentences")
	}

	grad := make([]float64, cfg.Dim)
	steps := 0
	totalSteps := cfg.Epochs * totalTokens
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range encoded {
			// Subsample frequent words per sentence pass.
			kept := kept(sent, vocab, cfg.Subsample, r)
			for i, center := range kept {
				steps++
				lr := cfg.LR * (1 - float64(steps)/float64(totalSteps+1))
				if lr < cfg.LR/100 {
					lr = cfg.LR / 100
				}
				w := 1 + r.IntN(cfg.Window) // dynamic window
				for j := i - w; j <= i+w; j++ {
					if j < 0 || j >= len(kept) || j == i {
						continue
					}
					m.trainPair(center, kept[j], cfg.Negatives, lr, r, grad)
				}
			}
		}
	}
	return m, nil
}

func kept(sent []int, v *Vocab, t float64, r *stats.RNG) []int {
	if t <= 0 {
		return sent
	}
	out := make([]int, 0, len(sent))
	for _, id := range sent {
		if r.Float64() < v.subsampleKeepProb(id, t) {
			out = append(out, id)
		}
	}
	return out
}

// trainPair performs one SGNS update: the context word is the positive
// target for the center word's input vector; negatives come from the
// smoothed unigram distribution.
func (m *Model) trainPair(center, context, negatives int, lr float64, r *stats.RNG, grad []float64) {
	vc := m.in[center*m.Dim : (center+1)*m.Dim]
	for i := range grad {
		grad[i] = 0
	}
	update := func(target int, label float64) {
		vo := m.out[target*m.Dim : (target+1)*m.Dim]
		score := stats.Sigmoid(stats.Dot(vc, vo))
		g := lr * (label - score)
		for i := range vo {
			grad[i] += g * vo[i]
			vo[i] += g * vc[i]
		}
	}
	update(context, 1)
	for n := 0; n < negatives; n++ {
		neg := m.Vocab.sampleNegative(r)
		if neg == context {
			continue
		}
		update(neg, 0)
	}
	for i := range vc {
		vc[i] += grad[i]
	}
}
