package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Quantity {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseBasicForms(t *testing.T) {
	cases := []struct {
		in   string
		val  float64
		unit Unit
	}{
		{"100g", 100, UnitGram},
		{"100 g", 100, UnitGram},
		{"0.5kg", 0.5, UnitKilogram},
		{"200cc", 200, UnitMilliliter},
		{"200ml", 200, UnitMilliliter},
		{"1l", 1, UnitLiter},
		{"大さじ2", 2, UnitTablespoon},
		{"大匙1", 1, UnitTablespoon},
		{"小さじ1/2", 0.5, UnitTeaspoon},
		{"大さじ1と1/2", 1.5, UnitTablespoon},
		{"2カップ", 2, UnitCup},
		{"カップ2", 2, UnitCup},
		{"1/2カップ", 0.5, UnitCup},
		{"3個", 3, UnitPiece},
		{"2枚", 2, UnitPiece},
		{"1本", 1, UnitPiece},
		{"1袋", 1, UnitPiece},
		{"1パック", 1, UnitPiece},
		{"少々", 1, UnitPinch},
		{"ひとつまみ", 1, UnitPinch},
		{"適量", 1, UnitPinch},
		{"100", 100, UnitGram},  // bare numbers are grams
		{"１００ｇ", 100, UnitGram}, // full-width folds
		{"袋", 1, UnitPiece},     // bare unit means one
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if math.Abs(q.Value-c.val) > 1e-12 || q.Unit != c.unit {
			t.Errorf("Parse(%q) = %+v, want {%g %v}", c.in, q, c.val, c.unit)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "大さじx", "1/0カップ", "//g"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// TestParseSuffixFallThrough is the regression test for the early
// abort in the suffix-unit loop: "100mg" lexically matches the suffix
// "g", and the parser used to give up when "100m" failed to parse
// instead of trying the remaining candidates and the bare-number path.
// The fixed parser must reject it with the generic cannot-parse error
// (milligrams are not a recipe unit), not mis-parse it or abort early.
func TestParseSuffixFallThrough(t *testing.T) {
	for _, s := range []string{"100mg", "2xml", "1.2.3g"} {
		_, err := Parse(s)
		if err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
		if !strings.Contains(err.Error(), "cannot parse quantity") {
			t.Errorf("Parse(%q) aborted early: %v", s, err)
		}
	}
	// A matching suffix whose remainder does parse still wins.
	q := mustParse(t, "100kg")
	if q.Value != 100 || q.Unit != UnitKilogram {
		t.Errorf("100kg = %+v", q)
	}
}

// TestParseWordQuantities covers the word amounts recipe sites use
// interchangeably with 少々/適量.
func TestParseWordQuantities(t *testing.T) {
	for _, s := range []string{"適宜", "少量", "お好みで", "少々", "適量", "ひとつまみ"} {
		q := mustParse(t, s)
		if q.Unit != UnitPinch || q.Value != 1 {
			t.Errorf("Parse(%q) = %+v, want one pinch", s, q)
		}
	}
}

// TestParsePrefixWithCounterWord: 大さじ1杯 is the everyday way to
// write one tablespoon; the counter word after the number used to make
// the prefix path abort the whole parse.
func TestParsePrefixWithCounterWord(t *testing.T) {
	cases := []struct {
		in   string
		val  float64
		unit Unit
	}{
		{"大さじ1杯", 1, UnitTablespoon},
		{"大さじ1と1/2杯", 1.5, UnitTablespoon},
		{"小さじ2杯", 2, UnitTeaspoon},
		{"カップ2杯", 2, UnitCup},
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if math.Abs(q.Value-c.val) > 1e-12 || q.Unit != c.unit {
			t.Errorf("Parse(%q) = %+v, want {%g %v}", c.in, q, c.val, c.unit)
		}
	}
}

func TestGramsMass(t *testing.T) {
	g, err := Quantity{Value: 250, Unit: UnitGram}.Grams(Profile{})
	if err != nil || g != 250 {
		t.Errorf("g → %g, %v", g, err)
	}
	g, _ = Quantity{Value: 1.2, Unit: UnitKilogram}.Grams(Profile{})
	if g != 1200 {
		t.Errorf("kg → %g", g)
	}
	g, _ = Quantity{Value: 2, Unit: UnitPinch}.Grams(Profile{})
	if g != 1 {
		t.Errorf("pinch → %g", g)
	}
}

func TestGramsVolumeUsesDensity(t *testing.T) {
	// 大さじ1 of granulated sugar (0.6 g/mL) = 9 g, the JIS table value.
	sugar := Profile{DensityGPerML: 0.6}
	g, err := Quantity{Value: 1, Unit: UnitTablespoon}.Grams(sugar)
	if err != nil || math.Abs(g-9) > 1e-12 {
		t.Errorf("tbsp sugar = %g, want 9", g)
	}
	// 1 cup of water = 200 g.
	g, _ = Quantity{Value: 1, Unit: UnitCup}.Grams(WaterProfile)
	if g != 200 {
		t.Errorf("cup water = %g, want 200", g)
	}
	// Density 0 falls back to water.
	g, _ = Quantity{Value: 10, Unit: UnitMilliliter}.Grams(Profile{})
	if g != 10 {
		t.Errorf("mL default = %g, want 10", g)
	}
	// 小さじ = 5 mL.
	g, _ = Quantity{Value: 2, Unit: UnitTeaspoon}.Grams(WaterProfile)
	if g != 10 {
		t.Errorf("2 tsp water = %g, want 10", g)
	}
}

func TestGramsPieces(t *testing.T) {
	egg := Profile{PieceGrams: 50}
	g, err := Quantity{Value: 2, Unit: UnitPiece}.Grams(egg)
	if err != nil || g != 100 {
		t.Errorf("2 eggs = %g, %v", g, err)
	}
	// Gelatin sheet: 1.5 g each.
	sheet := Profile{PieceGrams: 1.5}
	g, _ = Quantity{Value: 4, Unit: UnitPiece}.Grams(sheet)
	if g != 6 {
		t.Errorf("4 sheets = %g, want 6", g)
	}
	if _, err := (Quantity{Value: 1, Unit: UnitPiece}).Grams(Profile{}); err == nil {
		t.Error("pieces without piece weight should fail")
	}
}

func TestGramsRejectsNegative(t *testing.T) {
	if _, err := (Quantity{Value: -1, Unit: UnitGram}).Grams(Profile{}); err == nil {
		t.Error("negative quantity should fail")
	}
}

func TestUnitPredicates(t *testing.T) {
	for _, u := range []Unit{UnitMilliliter, UnitLiter, UnitTeaspoon, UnitTablespoon, UnitCup} {
		if !u.IsVolume() {
			t.Errorf("%v should be volume", u)
		}
	}
	for _, u := range []Unit{UnitGram, UnitKilogram, UnitPiece, UnitPinch, UnitUnknown} {
		if u.IsVolume() {
			t.Errorf("%v should not be volume", u)
		}
	}
	if UnitTablespoon.Milliliters() != 15 || UnitTeaspoon.Milliliters() != 5 || UnitCup.Milliliters() != 200 {
		t.Error("standard capacities wrong")
	}
}

func TestUnitStrings(t *testing.T) {
	if UnitGram.String() != "g" || UnitCup.String() != "cup" || Unit(99).String() != "unknown" {
		t.Error("String() wrong")
	}
}

// Round-trip property: for volume quantities, grams scale linearly with
// value and density.
func TestGramsLinearityProperty(t *testing.T) {
	f := func(v uint8, d uint8) bool {
		val := float64(v%100) + 0.5
		den := (float64(d%20) + 1) / 10
		p := Profile{DensityGPerML: den}
		g1, err1 := Quantity{Value: val, Unit: UnitMilliliter}.Grams(p)
		g2, err2 := Quantity{Value: 2 * val, Unit: UnitMilliliter}.Grams(p)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(g2-2*g1) < 1e-9 && math.Abs(g1-val*den) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNumberMixedAndFraction(t *testing.T) {
	q := mustParse(t, "小さじ2と2/4")
	if math.Abs(q.Value-2.5) > 1e-12 {
		t.Errorf("2と2/4 = %g", q.Value)
	}
}

func TestParseRanges(t *testing.T) {
	cases := []struct {
		in  string
		val float64
	}{
		{"2~3個", 2.5},
		{"2〜3個", 2.5},
		{"100~150g", 125},
		{"大さじ1~2", 1.5},
		{"1/2~1カップ", 0.75},
	}
	for _, c := range cases {
		q := mustParse(t, c.in)
		if math.Abs(q.Value-c.val) > 1e-12 {
			t.Errorf("Parse(%q) = %g, want %g", c.in, q.Value, c.val)
		}
	}
	// Descending and open ranges fail.
	for _, s := range []string{"3~2個", "~3個", "2~個"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}
