// Package units parses the heterogeneous quantity notations found in
// Japanese recipe text ("大さじ2", "１００ｇ", "1/2カップ", "200cc",
// "2個", "少々") and converts them to grams.
//
// The conversion follows the paper's procedure: volumes use the
// Japanese standardized measuring utensils (小さじ = 5 mL, 大さじ =
// 15 mL, 1カップ = 200 mL) and a per-ingredient specific weight against
// water; counted pieces use a per-ingredient piece weight (a sheet of
// gelatin, an egg, a stick of kanten).
package units

import "fmt"

// Unit is a recipe quantity unit.
type Unit int

// Supported units.
const (
	UnitUnknown    Unit = iota
	UnitGram            // g
	UnitKilogram        // kg
	UnitMilliliter      // mL / cc
	UnitLiter           // L
	UnitTeaspoon        // 小さじ, 5 mL (JIS standard)
	UnitTablespoon      // 大さじ, 15 mL (JIS standard)
	UnitCup             // カップ, 200 mL (the Japanese kitchen cup)
	UnitPiece           // 個 / 枚 / 本 / 袋 / 玉 — needs a piece weight
	UnitPinch           // 少々 / ひとつまみ, treated as 0.5 g
)

// Standard Japanese measuring capacities in milliliters.
const (
	TeaspoonML   = 5.0
	TablespoonML = 15.0
	CupML        = 200.0
	PinchGrams   = 0.5
)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitGram:
		return "g"
	case UnitKilogram:
		return "kg"
	case UnitMilliliter:
		return "mL"
	case UnitLiter:
		return "L"
	case UnitTeaspoon:
		return "tsp"
	case UnitTablespoon:
		return "tbsp"
	case UnitCup:
		return "cup"
	case UnitPiece:
		return "piece"
	case UnitPinch:
		return "pinch"
	default:
		return "unknown"
	}
}

// IsVolume reports whether the unit measures volume.
func (u Unit) IsVolume() bool {
	switch u {
	case UnitMilliliter, UnitLiter, UnitTeaspoon, UnitTablespoon, UnitCup:
		return true
	}
	return false
}

// Milliliters returns the unit's capacity in mL; only valid for volume
// units.
func (u Unit) Milliliters() float64 {
	switch u {
	case UnitMilliliter:
		return 1
	case UnitLiter:
		return 1000
	case UnitTeaspoon:
		return TeaspoonML
	case UnitTablespoon:
		return TablespoonML
	case UnitCup:
		return CupML
	default:
		panic(fmt.Sprintf("units: %v is not a volume unit", u))
	}
}

// Quantity is a parsed amount with its unit.
type Quantity struct {
	Value float64
	Unit  Unit
}

// Profile carries the per-ingredient physical constants needed for
// conversion to grams.
type Profile struct {
	// DensityGPerML is the specific weight against water used when a
	// quantity is a volume. For powders measured by spoon this is the
	// effective bulk density of the Japanese standard tables (e.g.
	// granulated sugar: 大さじ1 = 9 g → 0.6 g/mL).
	DensityGPerML float64
	// PieceGrams is the weight of one counted piece (egg: 50 g, gelatin
	// sheet: 1.5 g). Zero means the ingredient cannot be counted.
	PieceGrams float64
}

// WaterProfile converts volumes one-to-one and has no piece weight.
var WaterProfile = Profile{DensityGPerML: 1}

// Grams converts the quantity to grams using the ingredient profile.
func (q Quantity) Grams(p Profile) (float64, error) {
	if q.Value < 0 {
		return 0, fmt.Errorf("units: negative quantity %g", q.Value)
	}
	switch {
	case q.Unit == UnitGram:
		return q.Value, nil
	case q.Unit == UnitKilogram:
		return q.Value * 1000, nil
	case q.Unit == UnitPinch:
		return q.Value * PinchGrams, nil
	case q.Unit.IsVolume():
		d := p.DensityGPerML
		if d == 0 {
			d = 1 // fall back to water
		}
		return q.Value * q.Unit.Milliliters() * d, nil
	case q.Unit == UnitPiece:
		if p.PieceGrams <= 0 {
			return 0, fmt.Errorf("units: ingredient has no piece weight for %g pieces", q.Value)
		}
		return q.Value * p.PieceGrams, nil
	default:
		return 0, fmt.Errorf("units: cannot convert unknown unit")
	}
}
