package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/textseg"
)

// Parse reads a quantity expression as it appears in a recipe
// ingredient line. Accepted shapes, after normalization:
//
//	"100g" "0.5kg" "200cc" "200ml" "1l"
//	"大さじ2" "小さじ1/2" "大さじ1と1/2" "大さじ1杯"
//	"2カップ" "カップ2" "1/2カップ"
//	"3個" "2枚" "1本" "1袋" "1玉" "1パック"
//	"少々" "ひとつまみ" "適量" "適宜" "少量" "お好みで" (all parse as a pinch)
//
// Numbers may be integers, decimals, fractions (1/2) or mixed numbers
// with と ("1と1/2"). Full-width digits are folded by normalization.
func Parse(s string) (Quantity, error) {
	orig := s
	s = strings.TrimSpace(textseg.Normalize(s))
	if s == "" {
		return Quantity{}, fmt.Errorf("units: empty quantity")
	}

	// Whole-string word quantities.
	switch s {
	case "少々", "ひとつまみ", "てきりょう", "適量", "適宜", "てきぎ", "少量", "お好みで", "おこのみで":
		return Quantity{Value: 1, Unit: UnitPinch}, nil
	}

	// Leading-unit form: カップ2, おおさじ1, 大さじ1杯 … A remainder
	// that fails to parse falls through to the later candidates and the
	// suffix/bare paths instead of aborting: a lexical prefix match is
	// not proof this was the right reading.
	for _, pu := range prefixUnits {
		if rest, ok := strings.CutPrefix(s, pu.name); ok {
			// 大さじ1杯: the counter word after the number is redundant
			// with the leading unit.
			rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "杯"))
			v, err := parseNumber(rest)
			if err != nil {
				continue
			}
			return Quantity{Value: v, Unit: pu.unit}, nil
		}
	}

	// Trailing-unit form: 100g, 2カップ, 3個 … As above, a suffix that
	// matches lexically but leaves an unparseable remainder ("100mg"
	// matches "g" and leaves "100m") is skipped, not fatal — later
	// candidates and the bare-number path still get their turn.
	for _, su := range suffixUnits {
		if rest, ok := strings.CutSuffix(s, su.name); ok {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				return Quantity{Value: 1, Unit: su.unit}, nil
			}
			v, err := parseNumber(rest)
			if err != nil {
				continue
			}
			return Quantity{Value: v, Unit: su.unit}, nil
		}
	}

	// Bare number: grams by convention of the sites' ingredient fields.
	if v, err := parseNumber(s); err == nil {
		return Quantity{Value: v, Unit: UnitGram}, nil
	}
	return Quantity{}, fmt.Errorf("units: cannot parse quantity %q", orig)
}

type unitName struct {
	name string
	unit Unit
}

// prefixUnits are tried before suffix units; note normalization has
// already lower-cased ASCII and folded katakana to hiragana.
var prefixUnits = []unitName{
	{"おおさじ", UnitTablespoon},
	{"大さじ", UnitTablespoon},
	{"大匙", UnitTablespoon},
	{"こさじ", UnitTeaspoon},
	{"小さじ", UnitTeaspoon},
	{"小匙", UnitTeaspoon},
	{"かっぷ", UnitCup},
}

// suffixUnits: longer names first so "ml" wins over "l" and "かっぷ"
// over nothing.
var suffixUnits = []unitName{
	{"かっぷ", UnitCup},
	{"ぱっく", UnitPiece},
	{"ml", UnitMilliliter},
	{"cc", UnitMilliliter},
	{"kg", UnitKilogram},
	{"g", UnitGram},
	{"l", UnitLiter},
	{"個", UnitPiece},
	{"枚", UnitPiece},
	{"本", UnitPiece},
	{"袋", UnitPiece},
	{"玉", UnitPiece},
	{"丁", UnitPiece},
	{"杯", UnitTablespoon}, // bare 杯 in recipes almost always means 大さじ
}

// parseNumber reads integers, decimals, fractions "a/b", mixed
// numbers "xとa/b", and ranges "2~3" / "2〜3" (interpreted as their
// midpoint, the convention when converting posted recipes to weights).
func parseNumber(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing number")
	}
	for _, sep := range []string{"~", "〜", "-"} {
		lo, hi, ok := strings.Cut(s, sep)
		if !ok || lo == "" || hi == "" {
			continue
		}
		a, err := parseNumber(lo)
		if err != nil {
			return 0, err
		}
		b, err := parseNumber(hi)
		if err != nil {
			return 0, err
		}
		if b < a {
			return 0, fmt.Errorf("descending range %q", s)
		}
		return finite((a+b)/2, s)
	}
	if whole, frac, ok := strings.Cut(s, "と"); ok {
		w, err := parseNumber(whole)
		if err != nil {
			return 0, err
		}
		f, err := parseNumber(frac)
		if err != nil {
			return 0, err
		}
		return finite(w+f, s)
	}
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
		if err != nil {
			return 0, fmt.Errorf("bad fraction numerator %q", num)
		}
		d, err := strconv.ParseFloat(strings.TrimSpace(den), 64)
		if err != nil || d == 0 {
			return 0, fmt.Errorf("bad fraction denominator %q", den)
		}
		return finite(n/d, s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return finite(v, s)
}

// finite rejects NaN and ±Inf: strconv.ParseFloat happily reads
// spellings like "nAn" and "inf", and range/sum arithmetic on huge
// inputs can overflow — a recipe quantity must be a real number.
func finite(v float64, s string) (float64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite number %q", s)
	}
	return v, nil
}
