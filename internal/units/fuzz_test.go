package units

import (
	"math"
	"testing"
)

// FuzzParse checks that Parse never panics and that successful parses
// obey basic sanity: non-negative values and convertible units.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"100g", "大さじ2", "小さじ1/2", "1/2カップ", "カップ3", "200cc",
		"２００ｍｌ", "3個", "少々", "ひとつまみ", "1と1/2カップ", "0.5kg",
		"", "大さじ", "g", "ナン", "9999999999999個", "1/0", "-5g", "１.５枚",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if math.IsNaN(q.Value) {
			t.Fatalf("Parse(%q) produced NaN", s)
		}
		// Whatever parsed must convert to grams (or return a clean error
		// for pieces without weight / negative values).
		g, err := q.Grams(Profile{DensityGPerML: 1, PieceGrams: 10})
		if err == nil && (math.IsNaN(g) || math.IsInf(g, 0)) {
			t.Fatalf("Parse(%q) → %v grams", s, g)
		}
	})
}
