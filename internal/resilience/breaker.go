package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the circuit is
// open: the protected dependency has failed enough times in a row that
// calling it again is presumed wasted work (and added load on whatever
// is already struggling). Callers fail fast instead.
var ErrBreakerOpen = errors.New("resilience: circuit open")

// BreakerState is the circuit position.
type BreakerState int

const (
	// BreakerClosed: calls flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is in flight; its outcome decides
	// whether the circuit closes again or re-opens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row open the circuit, Allow rejects with ErrBreakerOpen for
// Cooldown, then exactly one probe is admitted. A probe success closes
// the circuit; a probe failure re-opens it for another cooldown.
//
// The caller brackets each protected call with Allow / Success /
// Failure. Failures that are the caller's own fault (a missing key, a
// digest mismatch on intact transport) should be reported as Success —
// the breaker tracks dependency health, not payload validity.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit. Values below 1 mean 5.
	Threshold int
	// Cooldown is how long the circuit stays open before a probe is
	// allowed. Values <= 0 mean 1 second.
	Cooldown time.Duration

	// Clock is a test hook; time.Now when nil.
	Clock func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	opens    int64
}

// NewBreaker builds a closed breaker. threshold < 1 and cooldown <= 0
// select the defaults (5 failures, 1 second).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. While open it returns
// ErrBreakerOpen; once the cooldown has elapsed it admits a single
// half-open probe (concurrent callers keep getting ErrBreakerOpen
// until that probe reports its outcome).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		return ErrBreakerOpen
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		return nil
	}
}

// Success records a healthy call: the failure streak resets and a
// half-open probe closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = BreakerClosed
}

// Failure records a failed call. In the closed state it advances the
// streak and opens the circuit at the threshold; a failed half-open
// probe re-opens immediately for another full cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.open()
		}
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openedAt = b.now()
	b.opens++
}

// State returns the current circuit position (open circuits past their
// cooldown still report open until a probe is admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed→open transitions over the breaker's lifetime.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
