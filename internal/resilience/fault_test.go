package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInjectNilAndEmptyAreNoOps(t *testing.T) {
	if err := Inject(context.Background(), nil, "op"); err != nil {
		t.Errorf("nil injector: %v", err)
	}
	if err := Inject(context.Background(), NewScript(), "op"); err != nil {
		t.Errorf("empty script: %v", err)
	}
}

func TestScriptQueueConsumesInOrder(t *testing.T) {
	boom := errors.New("boom")
	s := NewScript()
	s.Queue("annotate", 2, Fault{Err: boom})
	s.Queue("annotate", 1, Fault{Panic: "kaboom"})

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := Inject(ctx, s, "annotate"); !errors.Is(err, boom) {
			t.Errorf("call %d: %v, want boom", i, err)
		}
	}
	func() {
		defer func() {
			if recover() != "kaboom" {
				t.Error("third call should panic")
			}
		}()
		Inject(ctx, s, "annotate")
	}()
	if err := Inject(ctx, s, "annotate"); err != nil {
		t.Errorf("drained script still fires: %v", err)
	}
	// Other ops are untouched.
	if err := Inject(ctx, s, "topics"); err != nil {
		t.Errorf("unscripted op: %v", err)
	}
}

func TestScriptStandingFault(t *testing.T) {
	boom := errors.New("boom")
	s := NewScript()
	s.Queue("op", -1, Fault{Err: boom})
	for i := 0; i < 5; i++ {
		if err := Inject(context.Background(), s, "op"); !errors.Is(err, boom) {
			t.Fatalf("standing fault stopped firing at call %d: %v", i, err)
		}
	}
}

func TestInjectDelayHonoursContext(t *testing.T) {
	s := NewScript()
	s.Queue("slow", -1, Fault{Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Inject(ctx, s, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("stalled inject = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("inject did not abandon the delay on context death")
	}
}

func TestInjectDelayThenError(t *testing.T) {
	boom := errors.New("boom")
	s := NewScript()
	s.Queue("op", 1, Fault{Delay: time.Millisecond, Err: boom})
	if err := Inject(context.Background(), s, "op"); !errors.Is(err, boom) {
		t.Errorf("delayed error = %v", err)
	}
}
