package resilience

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var logged string
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("poisoned request")
		}
		w.WriteHeader(http.StatusOK)
	}), func(format string, args ...any) { logged = fmt.Sprintf(format, args...) })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic status = %d", rec.Code)
	}
	if !strings.Contains(logged, "poisoned request") || !strings.Contains(logged, "/boom") {
		t.Errorf("panic log = %q", logged)
	}
	// The server keeps serving after the panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fine", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-panic status = %d", rec.Code)
	}
}

func TestRecoverAfterPartialWriteOnlyLogs(t *testing.T) {
	logged := false
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late panic")
	}), func(string, ...any) { logged = true })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusAccepted {
		t.Errorf("started response was rewritten to %d", rec.Code)
	}
	if !logged {
		t.Error("late panic not logged")
	}
}

func TestRecoverReRaisesAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), nil)
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler should pass through")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestTimeoutAttachesDeadline(t *testing.T) {
	var deadline time.Time
	var ok bool
	h := Timeout(50*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, ok = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !ok {
		t.Fatal("no deadline on request context")
	}
	if until := time.Until(deadline); until > 50*time.Millisecond {
		t.Errorf("deadline %v out", until)
	}
}

func TestTimeoutExpiresDuringHandler(t *testing.T) {
	var err error
	h := Timeout(time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			err = r.Context().Err()
		case <-time.After(time.Second):
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if err != context.DeadlineExceeded {
		t.Errorf("handler saw %v, want DeadlineExceeded", err)
	}
}

func TestTimeoutZeroIsPassThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("zero timeout should not attach a deadline")
		}
	})
	Timeout(0, inner).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}
