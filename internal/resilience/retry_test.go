package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Microsecond}, func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 3}, func(context.Context) error {
		calls++
		return boom
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, boom) {
		t.Errorf("exhausted error %v should wrap the last failure", err)
	}
}

func TestRetryStopsOnContext(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	calls := 0
	err := Retry(ctx, Backoff{Attempts: 100, Base: 20 * time.Millisecond}, func(context.Context) error {
		calls++
		return boom
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 before the context died mid-wait", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, boom) {
		t.Errorf("err = %v, want both the context error and the last failure", err)
	}
}

func TestRetryZeroValueRunsOnce(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	if err := Retry(context.Background(), Backoff{}, func(context.Context) error {
		calls++
		return boom
	}); !errors.Is(err, boom) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	b := Backoff{Attempts: 5, Base: 100 * time.Millisecond, Max: 300 * time.Millisecond, Seed: 7}
	d1, d2 := b.Delays(), b.Delays()
	if len(d1) != 4 {
		t.Fatalf("%d delays for 5 attempts", len(d1))
	}
	nominal := []time.Duration{100, 200, 300, 300} // capped at Max
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("delay %d not deterministic: %v vs %v", i, d1[i], d2[i])
		}
		n := nominal[i] * time.Millisecond
		if d1[i] < n/2 || d1[i] > n {
			t.Errorf("delay %d = %v outside jitter band [%v, %v]", i, d1[i], n/2, n)
		}
	}
	other := Backoff{Attempts: 5, Base: 100 * time.Millisecond, Max: 300 * time.Millisecond, Seed: 8}.Delays()
	same := true
	for i := range d1 {
		same = same && d1[i] == other[i]
	}
	if same {
		t.Error("different seeds produced an identical schedule")
	}
}
