package resilience

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// Recover converts handler panics into 500s so one poisoned request
// cannot take the whole server down. The panic value and stack are
// reported through logf (one call per panic); when the handler had
// already started writing a response, nothing more can be sent and
// the panic is only logged. http.ErrAbortHandler keeps its net/http
// meaning and is re-raised.
func Recover(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &sniffWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if logf != nil {
				logf("resilience: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			}
			if !sw.wrote {
				http.Error(sw.ResponseWriter, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// Timeout attaches a per-request deadline to the request context.
// It deliberately does not write the timeout response itself:
// handlers own their status mapping (the serve package answers 504),
// and the context guarantees the work below them actually stops.
func Timeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// sniffWriter records whether the response has started, which decides
// if a recovered panic can still send a 500.
type sniffWriter struct {
	http.ResponseWriter
	wrote bool
}

func (s *sniffWriter) WriteHeader(code int) {
	s.wrote = true
	s.ResponseWriter.WriteHeader(code)
}

func (s *sniffWriter) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}
