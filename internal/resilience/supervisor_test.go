package resilience

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// supervisorData draws a small well-separated synthetic corpus from
// the model's generative process (three topics owning disjoint words).
func supervisorData(docs int) *core.Data {
	rng := stats.NewRNG(41, 99)
	phi := [][]float64{
		{.30, .30, .30, .03, .03, .02, .01, .005, .005},
		{.01, .005, .005, .30, .30, .30, .03, .03, .02},
		{.03, .03, .02, .01, .005, .005, .30, .30, .30},
	}
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	data := &core.Data{V: 9}
	for d := 0; d < docs; d++ {
		k := d % 3
		n := 2 + rng.IntN(4)
		words := make([]int, n)
		for i := range words {
			words[i] = rng.Categorical(phi[k])
		}
		data.Words = append(data.Words, words)
		data.Gel = append(data.Gel, []float64{rng.Normal(gelMeans[k][0], 0.25), rng.Normal(gelMeans[k][1], 0.25)})
		data.Emu = append(data.Emu, []float64{rng.Normal(emuMeans[k][0], 0.3), rng.Normal(emuMeans[k][1], 0.3)})
	}
	return data
}

func supervisorConfig(iters int) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 3
	cfg.Iterations = iters
	cfg.BurnIn = iters / 2
	cfg.Seed = 9
	return cfg
}

// memStore is an in-memory CheckpointStore with synchronous writes.
type memStore struct {
	mu       sync.Mutex
	snap     *core.Snapshot
	discards []string
}

func (m *memStore) Writer() (func(*core.Snapshot) error, func() error) {
	write := func(sn *core.Snapshot) error {
		m.mu.Lock()
		m.snap = sn
		m.mu.Unlock()
		return nil
	}
	return write, func() error { return nil }
}

func (m *memStore) LoadHealthy() (*core.Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil {
		return nil, errors.New("memStore: no checkpoint")
	}
	return m.snap, nil
}

func (m *memStore) Discard(reason string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap = nil
	m.discards = append(m.discards, reason)
	return nil
}

// TestSupervisorRollbackThenIdenticalResult is the divergence-injection
// acceptance test: a seeded fault poisons the log-likelihood at sweep
// 25 exactly once; the supervisor must detect the collapse, roll back
// to the sweep-20 checkpoint, and — because a rollback replays the
// checkpoint's own RNG stream — finish with estimates byte-identical
// to an unperturbed fit.
func TestSupervisorRollbackThenIdenticalResult(t *testing.T) {
	data := supervisorData(60)
	base := supervisorConfig(40)
	base.CheckpointEvery = 10

	// Reference: the same chain with no fault and no supervision.
	plain := base
	plain.CheckpointEvery = 0
	want, err := core.Fit(data, plain)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	var fired atomic.Bool
	cfg.Health = core.HealthPolicy{
		MaxLLDrop: 500,
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 25 && fired.CompareAndSwap(false, true) {
				return ll - 1e6
			}
			return ll
		},
	}
	store := &memStore{}
	sv := &Supervisor{MaxRestarts: 3, Store: store}
	got, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatalf("supervised fit failed: %v (incidents: %+v)", err, incidents)
	}
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", incidents)
	}
	inc := incidents[0]
	if inc.Kind != string(core.HealthLogLikCollapse) || inc.Action != ActionRollback || inc.ResumedFrom != 20 || inc.Sweep != 25 {
		t.Fatalf("incident = %+v, want loglik_collapse at sweep 25 rolled back to 20", inc)
	}

	// Replay determinism: every estimate matches the unperturbed chain.
	if !reflect.DeepEqual(got.Phi, want.Phi) {
		t.Error("Phi differs from the unperturbed fit")
	}
	if !reflect.DeepEqual(got.Theta, want.Theta) {
		t.Error("Theta differs from the unperturbed fit")
	}
	if !reflect.DeepEqual(got.Y, want.Y) {
		t.Error("Y differs from the unperturbed fit")
	}
	if !reflect.DeepEqual(got.LogLik, want.LogLik) {
		t.Error("LogLik trace differs from the unperturbed fit")
	}
	if !reflect.DeepEqual(got.Gel, want.Gel) || !reflect.DeepEqual(got.Emu, want.Emu) {
		t.Error("components differ from the unperturbed fit")
	}
}

// TestSupervisorBudgetExhausted: a standing NaN fault can never be
// outrun; the supervisor must spend its restart budget and fail with
// the full incident history, inspectable down to core.ErrUnhealthy.
func TestSupervisorBudgetExhausted(t *testing.T) {
	data := supervisorData(30)
	cfg := supervisorConfig(20)
	cfg.Health = core.HealthPolicy{
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 5 {
				return math.NaN()
			}
			return ll
		},
	}
	sv := &Supervisor{MaxRestarts: 2}
	res, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err == nil || res != nil {
		t.Fatal("supervised fit succeeded under a standing NaN fault")
	}
	var fe *FitError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T is not a *FitError: %v", err, err)
	}
	if !errors.Is(err, core.ErrUnhealthy) {
		t.Fatalf("FitError does not unwrap to core.ErrUnhealthy: %v", err)
	}
	if len(incidents) != 3 || len(fe.Incidents) != 3 {
		t.Fatalf("incidents = %+v, want 3 (initial + 2 restarts)", incidents)
	}
	for i, inc := range incidents {
		if inc.Kind != string(core.HealthNaNLogLik) || inc.Sweep != 5 {
			t.Fatalf("incident %d = %+v, want nan_loglik at sweep 5", i, inc)
		}
	}
	for _, inc := range incidents[:2] {
		if inc.Action != ActionRestart || inc.ResumedFrom != -1 {
			t.Fatalf("non-final incident %+v, want a fresh restart", inc)
		}
	}
	if incidents[2].Action != ActionGaveUp {
		t.Fatalf("final incident %+v, want gave_up", incidents[2])
	}
}

// TestSupervisorFreshRestartsReseed: without a checkpoint store every
// recovery is a fresh chain with a stride-offset seed, so a divergence
// born of RNG bad luck is not replayed verbatim.
func TestSupervisorFreshRestartsReseed(t *testing.T) {
	data := supervisorData(30)
	cfg := supervisorConfig(15)
	var mu sync.Mutex
	var seeds []uint64
	var fail atomic.Bool
	fail.Store(true)
	cfg.Health = core.HealthPolicy{
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 2 && fail.Swap(false) {
				return math.NaN()
			}
			return ll
		},
	}
	// With Store nil the supervisor leaves CheckpointFunc alone, so the
	// snapshots it emits reveal each attempt's effective seed.
	cfg.CheckpointEvery = 5
	cfg.CheckpointFunc = func(sn *core.Snapshot) error {
		mu.Lock()
		defer mu.Unlock()
		seeds = append(seeds, sn.Seed)
		return nil
	}
	sv := &Supervisor{MaxRestarts: 1}
	_, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatalf("fit failed: %v (incidents %+v)", err, incidents)
	}
	if len(incidents) != 1 || incidents[0].Action != ActionRestart {
		t.Fatalf("incidents = %+v, want one fresh restart", incidents)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seeds) == 0 {
		t.Fatal("no checkpoints observed")
	}
	for _, s := range seeds {
		if s == cfg.Seed {
			t.Fatalf("restarted chain kept seed %d; want a stride-offset reseed", s)
		}
	}
}

// TestSupervisorBurnedCheckpointEscalates: when resuming the same
// checkpoint fails twice, the supervisor must discard it and escalate
// to a fresh reseeded restart instead of looping on poisoned state.
func TestSupervisorBurnedCheckpointEscalates(t *testing.T) {
	data := supervisorData(40)
	cfg := supervisorConfig(40)
	cfg.CheckpointEvery = 10
	cfg.Health = core.HealthPolicy{
		Perturb: func(sweep int, ll float64) float64 {
			if sweep >= 25 {
				return math.NaN() // standing fault: no trajectory survives
			}
			return ll
		},
	}
	store := &memStore{}
	sv := &Supervisor{MaxRestarts: 3, Store: store}
	_, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err == nil {
		t.Fatal("fit succeeded under a standing fault")
	}
	if len(incidents) != 4 {
		t.Fatalf("incidents = %+v, want 4", incidents)
	}
	if incidents[0].Action != ActionRollback || incidents[0].ResumedFrom != 20 {
		t.Fatalf("incident 0 = %+v, want rollback to sweep 20", incidents[0])
	}
	if incidents[1].Action != ActionRestart {
		t.Fatalf("incident 1 = %+v, want escalation to a fresh restart after the burned checkpoint", incidents[1])
	}
	if len(store.discards) != 1 {
		t.Fatalf("discards = %v, want exactly one (the burned checkpoint)", store.discards)
	}
	if incidents[3].Action != ActionGaveUp {
		t.Fatalf("final incident = %+v, want gave_up", incidents[3])
	}
}

// TestSupervisorWatchdogRecoversStall: the out-of-band watchdog must
// convert a hung sweep into a typed sweep_stall incident and the next
// attempt — no longer stalling — must complete.
func TestSupervisorWatchdogRecoversStall(t *testing.T) {
	data := supervisorData(30)
	cfg := supervisorConfig(10)
	var stallOnce atomic.Bool
	stallOnce.Store(true)
	cfg.Hooks = core.SweepHooks{OnSweep: func(core.SweepStats) {
		if stallOnce.Swap(false) {
			time.Sleep(400 * time.Millisecond)
		}
	}}
	cfg.Health.SweepTimeout = 50 * time.Millisecond
	sv := &Supervisor{MaxRestarts: 1}
	res, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatalf("fit failed: %v (incidents %+v)", err, incidents)
	}
	if res == nil {
		t.Fatal("nil result from successful fit")
	}
	if len(incidents) != 1 || incidents[0].Kind != string(core.HealthSweepStall) {
		t.Fatalf("incidents = %+v, want one sweep_stall", incidents)
	}
}

// TestSupervisorContextCancel: a canceled context stops the fit with a
// gave_up incident rather than burning the restart budget.
func TestSupervisorContextCancel(t *testing.T) {
	data := supervisorData(30)
	cfg := supervisorConfig(5000) // long enough to be mid-run when canceled
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Hooks = core.SweepHooks{OnSweep: func(st core.SweepStats) {
		if st.Sweep == 3 {
			cancel()
		}
	}}
	sv := &Supervisor{MaxRestarts: 5}
	_, incidents, err := sv.RunFit(ctx, data, cfg, nil)
	if err == nil {
		t.Fatal("fit succeeded despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if len(incidents) != 1 || incidents[0].Action != ActionGaveUp {
		t.Fatalf("incidents = %+v, want one gave_up", incidents)
	}
}

// TestSupervisorCaptureSeesFinalSampler: the Capture hook fires exactly
// once, on the successful attempt, and the sampler it sees is the one
// whose estimates RunFit returns — the contract a sharded fit relies on
// to extract mergeable statistics.
func TestSupervisorCaptureSeesFinalSampler(t *testing.T) {
	data := supervisorData(45)
	cfg := supervisorConfig(30)
	var captured *core.ShardStats
	calls := 0
	sv := &Supervisor{
		Capture: func(s *core.Sampler) {
			calls++
			captured = s.ShardStats(0)
		},
	}
	res, _, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Capture fired %d times, want 1", calls)
	}
	for d := range res.Y {
		if captured.Y[d] != res.Y[d] {
			t.Fatalf("captured Y[%d] = %d, result has %d", d, captured.Y[d], res.Y[d])
		}
	}
}

// TestSupervisorCaptureAfterRecovery: failed attempts never reach
// Capture; only the attempt that completes does.
func TestSupervisorCaptureAfterRecovery(t *testing.T) {
	data := supervisorData(45)
	cfg := supervisorConfig(30)
	var once atomic.Bool
	cfg.Health = core.HealthPolicy{
		MaxLLDrop: 100,
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 10 && once.CompareAndSwap(false, true) {
				return math.Inf(-1)
			}
			return ll
		},
	}
	calls := 0
	sv := &Supervisor{
		MaxRestarts: 2,
		Capture:     func(*core.Sampler) { calls++ },
	}
	_, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) == 0 {
		t.Fatal("perturbed fit recorded no incidents")
	}
	if calls != 1 {
		t.Fatalf("Capture fired %d times across %d incidents, want 1", calls, len(incidents))
	}
}
