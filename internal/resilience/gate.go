// Package resilience is the degradation toolkit the serving stack is
// built on: a bounded-concurrency admission gate that sheds load
// instead of queueing it unboundedly, panic-recovery and
// per-request-timeout HTTP middleware, a jittered retry helper, and a
// deterministic fault injector so every degraded path is testable
// without real overload.
package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated reports that the gate could not admit a caller within
// its wait budget. HTTP servers should map it to 429 Too Many
// Requests with a Retry-After hint.
var ErrSaturated = errors.New("resilience: saturated")

// Gate is a bounded-concurrency admission gate: at most capacity
// callers hold it at once. A caller over capacity waits up to the
// gate's wait budget (or its context, whichever ends first) for a
// slot to free, then is shed with ErrSaturated — bounding both
// concurrency and queueing delay, the two knobs that keep an
// overloaded service answering instead of collapsing.
type Gate struct {
	slots   chan struct{}
	maxWait time.Duration

	admitted atomic.Int64
	shed     atomic.Int64
}

// NewGate builds a gate admitting capacity concurrent holders, each
// willing to wait up to maxWait for admission. capacity below 1 is
// clamped to 1; maxWait of 0 sheds immediately when full.
func NewGate(capacity int, maxWait time.Duration) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &Gate{slots: make(chan struct{}, capacity), maxWait: maxWait}
}

// Acquire admits the caller or reports why it cannot: ErrSaturated
// when the wait budget expires with the gate still full, or the
// context error when ctx ends first. Every nil return must be paired
// with exactly one Release.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	if g.maxWait == 0 {
		g.shed.Add(1)
		return ErrSaturated
	}
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-timer.C:
		g.shed.Add(1)
		return ErrSaturated
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire admits the caller only when a slot is free right now —
// no waiting, no shed accounting. Batch handlers use it to claim
// opportunistic extra slots beyond the one they were admitted on:
// spare capacity parallelizes the batch, a busy gate does not shed
// traffic for it. A true return must be paired with exactly one
// Release.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		return false
	}
}

// Release frees one slot. Calling it without a matching Acquire is a
// programming error and panics.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("resilience: Gate.Release without Acquire")
	}
}

// InUse is the number of currently admitted holders.
func (g *Gate) InUse() int { return len(g.slots) }

// Capacity is the maximum number of concurrent holders.
func (g *Gate) Capacity() int { return cap(g.slots) }

// Admitted is the total number of successful Acquires.
func (g *Gate) Admitted() int64 { return g.admitted.Load() }

// Shed is the total number of Acquires rejected with ErrSaturated.
func (g *Gate) Shed() int64 { return g.shed.Load() }

// RetryAfter suggests how long a shed caller should back off before
// retrying: the wait budget rounded up to a whole second (the
// granularity of the Retry-After header), at least one second.
func (g *Gate) RetryAfter() time.Duration {
	d := g.maxWait
	if d < time.Second {
		return time.Second
	}
	return ((d + time.Second - 1) / time.Second) * time.Second
}
