package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// CheckpointStore is the supervisor's view of durable checkpoint
// storage. The pipeline's single-file checkpoint directory implements
// it; tests substitute in-memory fakes.
type CheckpointStore interface {
	// Writer returns a fresh checkpoint sink for one fit attempt: write
	// is installed as core.Config.CheckpointFunc, flush is called after
	// the attempt ends and must surface any write failure. A fresh pair
	// per attempt means a sticky write error from a crashed attempt
	// does not poison its successor.
	Writer() (write func(*core.Snapshot) error, flush func() error)
	// LoadHealthy returns the most recent checkpoint whose health
	// digest marks the chain clean. Errors mean "nothing safe to resume
	// from" — missing, corrupt, or diverged-at-write — and send the
	// supervisor to a fresh restart.
	LoadHealthy() (*core.Snapshot, error)
	// Discard retires the current checkpoint (e.g. after resuming it
	// failed), so the next LoadHealthy does not hand it back.
	Discard(reason string) error
}

// Incident actions: what the supervisor did after a failed attempt.
const (
	ActionRollback = "rollback" // resumed the last healthy checkpoint
	ActionRestart  = "restart"  // started a fresh reseeded chain
	ActionGaveUp   = "gave_up"  // restart budget exhausted (or canceled)
)

// Incident records one failed fit attempt and the supervisor's
// response. The slice of incidents is the fit's full recovery history,
// attached to the final error on failure and reported by /statusz.
type Incident struct {
	Attempt int    `json:"attempt"` // 0-based attempt index that failed
	Sweep   int    `json:"sweep"`   // sweeps completed when it failed (-1 unknown)
	Kind    string `json:"kind"`    // health-event kind, or "error"
	Detail  string `json:"detail"`
	Action  string `json:"action"` // rollback | restart | gave_up
	// ResumedFrom is the checkpoint sweep the next attempt resumed
	// from; -1 when it started fresh (or gave up).
	ResumedFrom int       `json:"resumed_from"`
	At          time.Time `json:"at"`
}

// FitError is the supervisor's terminal failure: the restart budget is
// spent (or the context ended) and the fit did not complete. It wraps
// the last attempt's error and carries the full incident history.
type FitError struct {
	Incidents []Incident
	Last      error
}

func (e *FitError) Error() string {
	return fmt.Sprintf("resilience: fit failed after %d incident(s): %v", len(e.Incidents), e.Last)
}

func (e *FitError) Unwrap() error { return e.Last }

// Supervisor wraps core fits with automatic recovery: health-aborted
// or otherwise failed attempts roll back to the last healthy
// checkpoint (when a Store is configured), escalate to a fresh
// reseeded chain when the checkpoint itself is burned, apply the
// jittered Backoff between attempts via Retry, and give up — with the
// full incident history — once MaxRestarts recoveries are spent.
type Supervisor struct {
	// MaxRestarts bounds recovery attempts after the first; 0 means no
	// recovery (a single attempt).
	MaxRestarts int

	// Backoff shapes the delay between attempts (Attempts is derived
	// from MaxRestarts and ignored). The zero value retries
	// immediately.
	Backoff Backoff

	// Store, when non-nil, provides checkpoint rollback. Without it
	// every recovery is a fresh restart.
	Store CheckpointStore

	// ReseedStride offsets the seed of each fresh restart
	// (seed + attempt·stride), so a chain that diverged from bad RNG
	// luck does not replay the same trajectory. 0 picks a default.
	// Rollbacks never reseed: the checkpoint's RNG stream is part of
	// the state being resumed.
	ReseedStride uint64

	// OnIncident, when non-nil, observes each incident as it is
	// recorded (metrics, logging).
	OnIncident func(Incident)

	// Capture, when non-nil, receives the final sampler of the
	// successful attempt before its estimates are returned. A sharded
	// fit uses it to extract mergeable sufficient statistics
	// (core.ShardStats) that Result alone does not carry. The sampler
	// is live state — the hook must not retain it past the call.
	Capture func(*core.Sampler)

	// Now is the clock, overridable in tests. Nil means time.Now.
	Now func() time.Time
}

func (sv *Supervisor) now() time.Time {
	if sv.Now != nil {
		return sv.Now()
	}
	return time.Now()
}

func (sv *Supervisor) reseedStride() uint64 {
	if sv.ReseedStride != 0 {
		return sv.ReseedStride
	}
	return 0x9E3779B97F4A7C15 // splitmix64 increment: odd, well-mixed
}

// RunFit runs the supervised fit. initial, when non-nil, is a
// checkpoint to resume from on the first attempt (startup -resume);
// the supervisor's own rollbacks load later checkpoints from Store.
// On success it returns the estimates plus any incidents survived
// along the way; on failure the returned error is a *FitError wrapping
// the last attempt's error, and errors.Is sees through it (e.g. to
// core.ErrUnhealthy).
func (sv *Supervisor) RunFit(ctx context.Context, data *core.Data, cfg core.Config, initial *core.Snapshot) (*core.Result, []Incident, error) {
	attempts := sv.MaxRestarts + 1
	if attempts < 1 {
		attempts = 1
	}
	b := sv.Backoff
	b.Attempts = attempts

	var (
		incidents  []Incident
		res        *core.Result
		attempt    = -1
		resume     = initial
		lastResume = -1 // checkpoint sweep the previous failed attempt resumed from
	)
	if initial != nil {
		lastResume = initial.Sweep
	}
	op := func(ctx context.Context) error {
		attempt++
		acfg := cfg
		if resume == nil && attempt > 0 {
			// Fresh restart after a failure: reseed so the chain explores
			// a different trajectory instead of replaying the divergence.
			acfg.Seed = cfg.Seed + uint64(attempt)*sv.reseedStride()
		}
		r, sweeps, runErr := sv.runOnce(ctx, data, acfg, resume)
		if runErr == nil {
			res = r
			return nil
		}
		inc := sv.newIncident(attempt, sweeps, runErr)
		if attempt+1 >= attempts || ctx.Err() != nil {
			inc.Action = ActionGaveUp
		} else {
			resume, lastResume = sv.nextStart(lastResume, &inc)
		}
		incidents = append(incidents, inc)
		if sv.OnIncident != nil {
			sv.OnIncident(inc)
		}
		return runErr
	}
	if err := Retry(ctx, b, op); err != nil {
		return nil, incidents, &FitError{Incidents: incidents, Last: err}
	}
	return res, incidents, nil
}

// runOnce executes one fit attempt: build (or resume) the sampler,
// install the heartbeat hook and checkpoint writer, arm the watchdog,
// run, and flush the writer. It returns the completed sweep count for
// incident reporting.
func (sv *Supervisor) runOnce(ctx context.Context, data *core.Data, cfg core.Config, resume *core.Snapshot) (*core.Result, int, error) {
	var flush func() error
	if sv.Store != nil {
		write, fl := sv.Store.Writer()
		cfg.CheckpointFunc = write
		flush = fl
	}
	hb := &heartbeat{}
	hb.beat(sv.now())
	cfg.Hooks = cfg.Hooks.Then(core.SweepHooks{OnSweep: func(core.SweepStats) { hb.beat(sv.now()) }})

	var s *core.Sampler
	var err error
	if resume != nil {
		// A rollback resumes the checkpoint's own seed (which a reseeded
		// predecessor may have changed); ResumeSampler refuses mismatches.
		cfg.Seed = resume.Seed
		s, err = core.ResumeSampler(data, cfg, resume)
	} else {
		s, err = core.NewSampler(data, cfg)
	}
	if err != nil {
		return nil, -1, err
	}
	stop := sv.watch(ctx, s, hb, cfg.Health.SweepTimeout)
	runErr := s.Run(nil)
	stop()
	sweeps := s.CompletedSweeps()
	if flush != nil {
		if ferr := flush(); ferr != nil && runErr == nil {
			runErr = ferr
		}
	}
	if runErr != nil {
		return nil, sweeps, runErr
	}
	if sv.Capture != nil {
		sv.Capture(s)
	}
	return s.Estimate(), sweeps, nil
}

// nextStart decides how the next attempt begins, annotating the
// incident. A checkpoint that already failed a resume is burned: it is
// discarded and the supervisor escalates to a fresh reseeded chain.
func (sv *Supervisor) nextStart(lastResume int, inc *Incident) (*core.Snapshot, int) {
	inc.Action = ActionRestart
	if sv.Store == nil {
		return nil, -1
	}
	sn, err := sv.Store.LoadHealthy()
	if err != nil {
		inc.Detail += "; no healthy checkpoint: " + err.Error()
		return nil, -1
	}
	if sn.Sweep == lastResume {
		reason := fmt.Sprintf("attempt %d failed again after resuming sweep %d", inc.Attempt, sn.Sweep)
		if derr := sv.Store.Discard(reason); derr != nil {
			inc.Detail += "; discarding burned checkpoint: " + derr.Error()
		} else {
			inc.Detail += fmt.Sprintf("; checkpoint at sweep %d burned, restarting fresh", sn.Sweep)
		}
		return nil, -1
	}
	inc.Action = ActionRollback
	inc.ResumedFrom = sn.Sweep
	return sn, sn.Sweep
}

// newIncident classifies an attempt failure. Typed health errors carry
// their own sweep index and kind; anything else reports as "error"
// with the sampler's completed-sweep count.
func (sv *Supervisor) newIncident(attempt, sweeps int, err error) Incident {
	inc := Incident{
		Attempt:     attempt,
		Sweep:       sweeps,
		Kind:        "error",
		Detail:      err.Error(),
		ResumedFrom: -1,
		At:          sv.now(),
	}
	var he *core.HealthError
	if errors.As(err, &he) {
		inc.Kind = string(he.Event.Kind)
		inc.Sweep = he.Event.Sweep
	}
	return inc
}

// heartbeat is the watchdog's shared clock: the sampler's sweep hook
// stamps it, the watchdog goroutine reads it.
type heartbeat struct {
	nanos atomic.Int64
}

func (h *heartbeat) beat(t time.Time) { h.nanos.Store(t.UnixNano()) }
func (h *heartbeat) last() time.Time  { return time.Unix(0, h.nanos.Load()) }

// watch arms the out-of-band stall watchdog: when no sweep completes
// within timeout, the sampler is aborted with a typed sweep_stall
// event; a context end aborts it with the context error. The returned
// stop function disarms the watchdog and waits for it to exit. With no
// timeout and a non-cancellable context it is a no-op.
func (sv *Supervisor) watch(ctx context.Context, s *core.Sampler, hb *heartbeat, timeout time.Duration) func() {
	if timeout <= 0 && ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var tick <-chan time.Time
		if timeout > 0 {
			// Poll at a quarter of the deadline: a stall is noticed at
			// most 1.25 timeouts after the last heartbeat.
			interval := timeout / 4
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			t := time.NewTicker(interval)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				s.Abort(ctx.Err())
				return
			case <-tick:
				if sv.now().Sub(hb.last()) > timeout {
					s.AbortUnhealthy(core.HealthSweepStall,
						fmt.Sprintf("no sweep completed within %v", timeout))
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
