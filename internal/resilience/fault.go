package resilience

import (
	"context"
	"sync"
	"time"
)

// Fault is one injected failure: an added delay, then optionally a
// panic or an error. The zero Fault is "no fault".
type Fault struct {
	// Delay stalls the operation, honouring context cancellation.
	Delay time.Duration
	// Panic, when non-empty, panics with this value after the delay —
	// exercising the Recover middleware path.
	Panic string
	// Err, when set, is returned after the delay.
	Err error
}

func (f Fault) zero() bool { return f.Delay == 0 && f.Panic == "" && f.Err == nil }

// Injector decides the fault (if any) for one named operation. A nil
// Injector injects nothing; production code passes nil, tests pass a
// Script.
type Injector interface {
	Fault(op string) Fault
}

// Inject applies the injector's fault for op under ctx: it waits out
// the delay (returning the context error if ctx ends first), then
// panics or returns the scripted error. With a nil injector or no
// scripted fault it is a cheap no-op, safe to leave on hot paths.
func Inject(ctx context.Context, inj Injector, op string) error {
	if inj == nil {
		return nil
	}
	f := inj.Fault(op)
	if f.zero() {
		return nil
	}
	if f.Delay > 0 {
		timer := time.NewTimer(f.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.Panic != "" {
		panic(f.Panic)
	}
	return f.Err
}

// Script is a deterministic Injector: each op name carries a queue of
// faults consumed one per call, so a test can say "the second
// annotation panics" and nothing else does. Safe for concurrent use.
type Script struct {
	mu     sync.Mutex
	queues map[string][]scripted
}

type scripted struct {
	f     Fault
	times int // remaining fires; <0 means every call
}

// NewScript builds an empty script (injects nothing until Queue).
func NewScript() *Script { return &Script{queues: map[string][]scripted{}} }

// Queue schedules f to fire the next times calls for op. times < 0
// fires on every call forever (a standing fault).
func (s *Script) Queue(op string, times int, f Fault) {
	if times == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queues[op] = append(s.queues[op], scripted{f: f, times: times})
}

// Fault pops the next scheduled fault for op, or the zero Fault.
func (s *Script) Fault(op string) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[op]
	if len(q) == 0 {
		return Fault{}
	}
	head := &q[0]
	f := head.f
	if head.times > 0 {
		head.times--
		if head.times == 0 {
			s.queues[op] = q[1:]
		}
	}
	return f
}
