package resilience

import (
	"context"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Backoff describes a jittered exponential retry schedule. The zero
// value retries once with no delay; fill in what matters.
type Backoff struct {
	// Attempts is the total number of tries, including the first.
	// Values below 1 are treated as 1.
	Attempts int
	// Base is the nominal delay before the second try; each further
	// delay grows by Factor and is capped at Max.
	Base time.Duration
	// Max caps a single delay. Zero means uncapped.
	Max time.Duration
	// Factor is the per-attempt growth; values below 1 mean 2.
	Factor float64
	// Seed drives the deterministic jitter stream, so a given seed
	// always produces the same schedule — retries stay reproducible
	// in tests and staggered across callers in production (give each
	// caller its own seed).
	Seed uint64
}

// Delays materialises the full schedule: Attempts-1 equal-jitter
// delays (half fixed, half uniform-random), deterministic in Seed.
// Exported for callers that interleave the schedule with external
// advice (the client SDK takes the longer of the scheduled delay and
// a server's Retry-After).
func (b Backoff) Delays() []time.Duration {
	n := b.Attempts
	if n < 1 {
		n = 1
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	rng := stats.NewRNG(b.Seed, 0xB0FF)
	out := make([]time.Duration, 0, n-1)
	d := float64(b.Base)
	for i := 1; i < n; i++ {
		capped := d
		if b.Max > 0 && capped > float64(b.Max) {
			capped = float64(b.Max)
		}
		out = append(out, time.Duration(capped/2+rng.Float64()*capped/2))
		d *= factor
	}
	return out
}

// Retry runs op until it returns nil, the schedule is exhausted, or
// ctx ends mid-wait. The final failure wraps the last error from op;
// a context death surfaces as the context error wrapping the last op
// error seen (if any), so callers can distinguish "gave up" from
// "was told to stop".
func Retry(ctx context.Context, b Backoff, op func(ctx context.Context) error) error {
	delays := b.Delays()
	var last error
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return canceledRetry(err, last)
		}
		last = op(ctx)
		if last == nil {
			return nil
		}
		if i >= len(delays) {
			return fmt.Errorf("resilience: %d attempts exhausted: %w", len(delays)+1, last)
		}
		if delays[i] > 0 {
			timer := time.NewTimer(delays[i])
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return canceledRetry(ctx.Err(), last)
			}
		}
	}
}

func canceledRetry(ctxErr, last error) error {
	if last == nil {
		return ctxErr
	}
	return fmt.Errorf("resilience: retry stopped (%w) after: %w", ctxErr, last)
}
