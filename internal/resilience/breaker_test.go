package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker timing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.Clock = clk.now
	return b, clk
}

// TestBreakerOpensAtThreshold: the circuit trips on the Nth
// consecutive failure, not before, and a success resets the streak.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("failure %d: circuit already open", i)
		}
		b.Failure()
	}
	b.Success() // streak broken
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("post-reset failure %d: circuit open early", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow on open circuit: %v, want ErrBreakerOpen", err)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d, want 1", b.Opens())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("circuit should be open")
	}

	clk.advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after cooldown rejected: %v", err)
	}
	// The probe is in flight: everyone else is still rejected.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second caller during half-open: %v, want ErrBreakerOpen", err)
	}
	b.Failure() // probe failed → re-open for another full cooldown
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("circuit should have re-opened after failed probe")
	}

	clk.advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed circuit rejecting calls: %v", err)
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines under
// the race detector; the single-probe invariant is checked by counting
// admissions in one half-open window.
func TestBreakerConcurrent(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure() // open
	clk.advance(2 * time.Second)

	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() == nil {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("%d probes admitted in one half-open window, want exactly 1", admitted)
	}
}
