package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.InUse() != 2 || g.Capacity() != 2 {
		t.Errorf("inUse=%d cap=%d", g.InUse(), g.Capacity())
	}
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Errorf("over-capacity acquire = %v, want ErrSaturated", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Errorf("post-release acquire = %v", err)
	}
	if g.Shed() != 1 || g.Admitted() != 3 {
		t.Errorf("shed=%d admitted=%d", g.Shed(), g.Admitted())
	}
}

func TestGateTryAcquire(t *testing.T) {
	g := NewGate(2, time.Second)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("TryAcquire refused free slots")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire took a slot past capacity")
	}
	if g.Shed() != 0 {
		t.Errorf("shed=%d; TryAcquire must not count as shed", g.Shed())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Error("TryAcquire refused a released slot")
	}
	if g.InUse() != 2 || g.Admitted() != 3 {
		t.Errorf("inUse=%d admitted=%d", g.InUse(), g.Admitted())
	}
}

func TestGateWaitsForSlot(t *testing.T) {
	g := NewGate(1, time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		g.Release()
	}()
	if err := g.Acquire(context.Background()); err != nil {
		t.Errorf("waiting acquire = %v, want admission after release", err)
	}
}

func TestGateHonoursContext(t *testing.T) {
	g := NewGate(1, time.Minute)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled acquire = %v", err)
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unmatched Release should panic")
		}
	}()
	NewGate(1, 0).Release()
}

func TestGateRetryAfter(t *testing.T) {
	if d := NewGate(1, 0).RetryAfter(); d != time.Second {
		t.Errorf("zero-wait RetryAfter = %v", d)
	}
	if d := NewGate(1, 1500*time.Millisecond).RetryAfter(); d != 2*time.Second {
		t.Errorf("1.5s-wait RetryAfter = %v, want 2s", d)
	}
}

// TestGateConcurrentHammer drives the gate from many goroutines under
// the race detector: concurrency never exceeds capacity and every
// admission is either released or counted shed.
func TestGateConcurrentHammer(t *testing.T) {
	const capacity = 3
	g := NewGate(capacity, time.Millisecond)
	var peak, cur atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := g.Acquire(context.Background()); err != nil {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
				cur.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if peak.Load() > capacity {
		t.Errorf("observed %d concurrent holders, capacity %d", peak.Load(), capacity)
	}
	if g.InUse() != 0 {
		t.Errorf("%d slots leaked", g.InUse())
	}
}
