package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Get-or-create returns the same instance.
	if reg.Counter("requests_total", "requests", nil) != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := reg.Gauge("in_flight", "", nil)
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "", nil)
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 2.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 3.04 || got > 3.05 {
		t.Fatalf("sum = %g", got)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %g, want 0.1", q)
	}
	// Beyond the last finite bound clamps to it.
	if q := h.Quantile(1.0); q != 1 {
		t.Fatalf("p100 = %g, want 1", q)
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("quantile must be positive after observations")
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "Requests served.", Labels{"route": "/annotate"}).Add(3)
	reg.GaugeFunc("ready", "Readiness.", nil, func() float64 { return 1 })
	reg.CounterFunc("shed_total", "", nil, func() int64 { return 7 })
	h := reg.Histogram("latency_seconds", "", []float64{0.1, 1}, Labels{"route": "/annotate"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP served_total Requests served.",
		"# TYPE served_total counter",
		`served_total{route="/annotate"} 3`,
		"# TYPE ready gauge",
		"ready 1",
		"shed_total 7",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1",route="/annotate"} 1`,
		`latency_seconds_bucket{le="1",route="/annotate"} 2`,
		`latency_seconds_bucket{le="+Inf",route="/annotate"} 3`,
		`latency_seconds_sum{route="/annotate"} 5.55`,
		`latency_seconds_count{route="/annotate"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hits_total", "", nil)
			h := reg.Histogram("lat_seconds", "", nil, nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("lat_seconds", "", nil, nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestInstrumentRecordsRouteMetrics(t *testing.T) {
	reg := NewRegistry()
	h := Instrument(reg, "/t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/t", nil))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/t?fail=1", nil))

	if got := reg.Counter("http_requests_total", "", Labels{"route": "/t", "code": "2xx"}).Value(); got != 3 {
		t.Fatalf("2xx = %d, want 3", got)
	}
	if got := reg.Counter("http_requests_total", "", Labels{"route": "/t", "code": "4xx"}).Value(); got != 1 {
		t.Fatalf("4xx = %d, want 1", got)
	}
	if got := reg.Histogram("http_request_duration_seconds", "", nil, Labels{"route": "/t"}).Count(); got != 4 {
		t.Fatalf("latency observations = %d, want 4", got)
	}
}

func TestAccessLogEmitsStructuredLine(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "json")
	h := AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/pot", nil))

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON line: %v\n%s", err, buf.String())
	}
	if line["method"] != "GET" || line["path"] != "/pot" || line["status"] != float64(http.StatusTeapot) {
		t.Fatalf("access line = %v", line)
	}
	if line["bytes"] != float64(len("short and stout")) {
		t.Fatalf("bytes = %v", line["bytes"])
	}
}

func TestAccessLogNilLoggerPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := AccessLog(nil, inner); got == nil {
		t.Fatal("nil logger must still return a handler")
	}
}
