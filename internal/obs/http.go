package obs

import (
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"time"
)

// NewLogger builds a slog logger writing to w in the given format:
// "json" for machine-shippable lines, anything else (conventionally
// "text") for logfmt-style lines. A nil writer defaults to stderr.
func NewLogger(w io.Writer, format string) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// StatusWriter wraps a ResponseWriter recording the status code and
// body bytes written, for access logs and status-class metrics. An
// unset status means the handler wrote a bare body; net/http then
// sends 200.
type StatusWriter struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

func (s *StatusWriter) WriteHeader(code int) {
	if s.Status == 0 {
		s.Status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *StatusWriter) Write(p []byte) (int, error) {
	if s.Status == 0 {
		s.Status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(p)
	s.Bytes += int64(n)
	return n, err
}

// statusClass buckets a status code for the request counter: "2xx",
// "4xx", … — per-code series would explode the label space for no
// operational gain.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// Instrument wraps next so every request records one latency
// observation in http_request_duration_seconds{route=…} and one count
// in http_requests_total{route=…,code=…}. The route label is the
// caller's static pattern, never the raw URL path — raw paths are
// unbounded and would blow up the series cardinality.
func Instrument(reg *Registry, route string, next http.Handler) http.Handler {
	hist := reg.Histogram("http_request_duration_seconds",
		"HTTP request latency by route.", nil, Labels{"route": route})
	// Pre-create the common classes so the exposition shows zeros
	// instead of omitting series that have not fired yet.
	counters := map[string]*Counter{}
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		counters[class] = reg.Counter("http_requests_total",
			"HTTP requests by route and status class.", Labels{"route": route, "code": class})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &StatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		class := statusClass(sw.Status)
		c, ok := counters[class]
		if !ok {
			c = reg.Counter("http_requests_total",
				"HTTP requests by route and status class.", Labels{"route": route, "code": class})
		}
		c.Inc()
	})
}

// AccessLog wraps next so every completed request emits one structured
// line on logger. A nil logger returns next unchanged, so callers can
// wire the middleware unconditionally.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &StatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.Status
		if status == 0 {
			status = http.StatusOK
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", sw.Bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}
