// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms) with Prometheus-text exposition,
// plus structured logging and HTTP instrumentation built on log/slog.
//
// The package deliberately implements the minimal subset of the
// Prometheus data model the stack needs — monotonic counters, gauges
// (including callback gauges for values owned elsewhere, like a gate's
// in-flight count), and cumulative histograms — so nothing outside the
// standard library is required and the hot-path cost of an observation
// is one or two atomic operations.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to a metric series ({route="/annotate"}).
// A nil map is a series with no labels.
type Labels map[string]string

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds: 1 ms to 10 s, the span between a cache-warm fold-in and a
// request that should have been shed long ago.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a programming error and ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one atomic add into the bucket, one CAS on the sum.
type Histogram struct {
	bounds []float64      // sorted upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0..1):
// the smallest bucket bound whose cumulative count covers q. The last
// finite bound is returned for observations beyond it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family.
type series struct {
	labels Labels
	sig    string // canonical {k="v",…} rendering, "" for no labels

	counter     *Counter
	counterFunc func() int64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // signature order of registration
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; use NewRegistry.
// All methods are safe for concurrent use; the getters are
// get-or-create, so handlers can call them on the hot path without
// caching (though caching the returned pointer is cheaper still).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelSignature renders labels canonically: keys sorted, values
// escaped, e.g. `{code="2xx",route="/annotate"}`.
func labelSignature(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, escapeLabel(ls[k]))
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// getLocked returns the series for (name, labels), creating family
// and series as needed. A name reused with a different kind panics:
// that is a programming error no exposition format can represent.
// Callers must hold r.mu — attaching the metric payload has to happen
// under the same critical section as the lookup, or two concurrent
// get-or-creates race on it.
func (r *Registry) getLocked(name, help string, kind metricKind, ls Labels) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, kind))
	}
	sig := labelSignature(ls)
	s, ok := f.series[sig]
	if !ok {
		copied := Labels{}
		for k, v := range ls {
			copied[k] = v
		}
		s = &series{labels: copied, sig: sig}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getLocked(name, help, kindCounter, ls)
	if s.counter == nil && s.counterFunc == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a callback-backed counter for a monotonic
// value owned elsewhere (a gate's shed total). The callback must be
// safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getLocked(name, help, kindCounter, ls)
	s.counterFunc = fn
	s.counter = nil
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getLocked(name, help, kindGauge, ls)
	if s.gauge == nil && s.gaugeFunc == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a callback-backed gauge. The callback must be
// safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getLocked(name, help, kindGauge, ls)
	s.gaugeFunc = fn
	s.gauge = nil
}

// Histogram returns (creating if needed) the histogram name{labels}
// with the given bucket upper bounds (DefBuckets when nil). Bounds are
// fixed at first registration; later calls reuse the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, ls Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getLocked(name, help, kindHistogram, ls)
	if s.hist == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		sorted := append([]float64(nil), bounds...)
		sort.Float64s(sorted)
		s.hist = &Histogram{bounds: sorted, counts: make([]atomic.Int64, len(sorted)+1)}
	}
	return s.hist
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family/series structure so rendering (which calls
	// user callbacks) runs outside the lock.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	type snap struct {
		f  *family
		ss []*series
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		ss := make([]*series, 0, len(f.order))
		for _, sig := range f.order {
			ss = append(ss, f.series[sig])
		}
		snaps[i] = snap{f: f, ss: ss}
	}
	r.mu.Unlock()

	for _, sn := range snaps {
		f := sn.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sn.ss {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		v := int64(0)
		if s.counterFunc != nil {
			v = s.counterFunc()
		} else if s.counter != nil {
			v = s.counter.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.sig, v)
		return err
	case kindGauge:
		v := 0.0
		if s.gaugeFunc != nil {
			v = s.gaugeFunc()
		} else if s.gauge != nil {
			v = s.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, formatFloat(v))
		return err
	default:
		return writeHistogram(w, f.name, s)
	}
}

// writeHistogram renders the cumulative _bucket / _sum / _count
// triplet of one histogram series, merging the le label into the
// series' own labels.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	if h == nil {
		return nil
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, name, s.labels, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, name, s.labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.sig, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.sig, h.Count())
	return err
}

func writeBucket(w io.Writer, name string, ls Labels, le string, cum int64) error {
	with := Labels{"le": le}
	for k, v := range ls {
		with[k] = v
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelSignature(with), cum)
	return err
}

// formatFloat renders floats the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
