// Package annotate is the user-facing layer the paper motivates:
// posted recipes rarely say what texture they produce, so given a
// fitted model this package attaches a "texture card" to any recipe —
// the texture words it is expected to carry, the quantitative
// rheology, and the nearest empirical measurement from the
// food-science literature.
package annotate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/rheology"
	"repro/internal/stats"
)

// ErrRecipe marks annotation failures caused by the recipe itself —
// unparseable amounts, no gel ingredient — as opposed to model or
// infrastructure failures. HTTP layers map it to a 4xx; everything
// else is the server's fault.
var ErrRecipe = errors.New("recipe not annotatable")

// TermEstimate is one expected texture term with its probability under
// the recipe's dominant topic.
type TermEstimate struct {
	Term lexicon.Term
	Prob float64
}

// Card is the texture annotation of one recipe.
type Card struct {
	RecipeID string
	Title    string

	// Topic placement.
	Topic      int
	TopicProb  float64
	Theta      []float64
	MinedTerms []lexicon.Term // texture terms already present in the description

	// Expected texture vocabulary from the topic.
	Expected []TermEstimate

	// Quantitative texture from the calibrated simulator.
	Attr rheology.Attributes

	// NearestMeasurement is the Table I / Table II(b) measurement whose
	// gel setting is closest to the recipe, with its distance in the
	// −log concentration space.
	NearestMeasurement rheology.Measurement
	MeasurementDist    float64
}

// Annotator folds recipes into a fitted model.
type Annotator struct {
	model *core.Result
	dict  *lexicon.Dictionary

	// FoldInIters is the number of Gibbs sweeps per annotation.
	FoldInIters int
	// TopTerms is the number of expected terms reported.
	TopTerms int
	// Seed drives the fold-in chain.
	Seed uint64
	// Kernel selects opt-in fold-in scoring variants (alias-method
	// draws, float32 scoring). The zero value is the default float64
	// path, byte-identical to the seed implementation.
	Kernel core.KernelOptions

	excluded map[string][]string
	refs     []rheology.Measurement
}

// New builds an annotator from a pipeline run. The word2vec term
// exclusions of the run carry over: excluded terms are not counted as
// mined texture terms.
func New(out *pipeline.Output) (*Annotator, error) {
	if out == nil || out.Model == nil {
		return nil, fmt.Errorf("annotate: need a fitted pipeline output")
	}
	refs := append([]rheology.Measurement{}, rheology.TableI...)
	refs = append(refs, rheology.Bavarois, rheology.MilkJelly)
	return &Annotator{
		model:       out.Model,
		dict:        out.Dict,
		FoldInIters: 100,
		TopTerms:    5,
		Seed:        1,
		excluded:    out.ExcludedTerms,
		refs:        refs,
	}, nil
}

// Annotate resolves the recipe and builds its texture card. Resolve
// always runs (it is deterministic and cheap) because recipes loaded
// from JSON carry grams but not the derived category fields.
//
// The context bounds the fold-in chain: when ctx ends mid-inference
// the returned error matches core.ErrCanceled and the context error.
// Recipe-caused failures match ErrRecipe.
func (a *Annotator) Annotate(ctx context.Context, r *recipe.Recipe) (*Card, error) {
	if err := r.Resolve(); err != nil {
		return nil, fmt.Errorf("annotate: %w: %w", ErrRecipe, err)
	}
	if !r.HasGel() {
		return nil, fmt.Errorf("annotate: %w: recipe %s has no gel ingredient; the model covers gel dishes", ErrRecipe, r.ID)
	}

	var mined []lexicon.Term
	var wordIDs []int
	for _, id := range a.dict.ExtractTermIDs(r.Description) {
		term := a.dict.Term(id)
		if _, skip := a.excluded[term.Kana]; skip {
			continue
		}
		mined = append(mined, term)
		wordIDs = append(wordIDs, id)
	}

	theta, err := a.model.FoldInOptsCtx(ctx, a.Kernel, wordIDs, r.GelFeatures(), r.EmulsionFeatures(), a.FoldInIters, a.Seed)
	if err != nil {
		return nil, fmt.Errorf("annotate: %w", err)
	}
	topic := stats.ArgMax(theta)

	card := &Card{
		RecipeID:   r.ID,
		Title:      r.Title,
		Topic:      topic,
		TopicProb:  theta[topic],
		Theta:      theta,
		MinedTerms: mined,
		Attr:       rheology.Predict(r.GelConcentrations(), r.EmulsionConcentrations()),
	}
	for _, tp := range a.model.TopTerms(topic, a.TopTerms) {
		if tp.Prob < 0.01 {
			break
		}
		card.Expected = append(card.Expected, TermEstimate{Term: a.dict.Term(tp.ID), Prob: tp.Prob})
	}

	// Nearest empirical measurement by gel-feature distance.
	gf := r.GelFeatures()
	bestD := -1.0
	for _, m := range a.refs {
		d := stats.Norm2(stats.SubVec(gf, m.GelFeatures()))
		if bestD < 0 || d < bestD {
			bestD = d
			card.NearestMeasurement = m
			card.MeasurementDist = d
		}
	}
	return card, nil
}

// AnnotateAll builds cards for a batch, skipping recipes the model
// cannot cover and reporting them in errs (index-aligned with the
// input; nil for successes). A dead context fails the remaining
// recipes with the cancellation error rather than burning sweeps on
// work nobody will read.
func (a *Annotator) AnnotateAll(ctx context.Context, rs []*recipe.Recipe) (cards []*Card, errs []error) {
	cards = make([]*Card, len(rs))
	errs = make([]error, len(rs))
	for i, r := range rs {
		cards[i], errs[i] = a.Annotate(ctx, r)
	}
	return cards, errs
}

// SenseSummary classifies the expected terms into sense categories,
// weighted by probability — a compact "reads hard / reads elastic"
// verdict.
func (c *Card) SenseSummary() map[lexicon.SenseClass]float64 {
	out := make(map[lexicon.SenseClass]float64)
	for _, te := range c.Expected {
		if s := te.Term.HardnessSense(); s != lexicon.SenseNone {
			out[s] += te.Prob
		}
		if s := te.Term.CohesivenessSense(); s != lexicon.SenseNone {
			out[s] += te.Prob
		}
		if s := te.Term.AdhesivenessSense(); s != lexicon.SenseNone {
			out[s] += te.Prob
		}
	}
	return out
}

// String renders the card for terminal display.
func (c *Card) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "texture card — %s (%s)\n", c.Title, c.RecipeID)
	fmt.Fprintf(&sb, "  topic %d (p=%.2f)\n", c.Topic, c.TopicProb)
	if len(c.MinedTerms) > 0 {
		names := make([]string, len(c.MinedTerms))
		for i, t := range c.MinedTerms {
			names[i] = t.Romaji
		}
		fmt.Fprintf(&sb, "  poster's own words: %s\n", strings.Join(names, ", "))
	}
	fmt.Fprintf(&sb, "  expected texture:\n")
	for _, te := range c.Expected {
		fmt.Fprintf(&sb, "    %-16s %.3f  %s\n", te.Term.Romaji, te.Prob, te.Term.Gloss)
	}
	fmt.Fprintf(&sb, "  rheology: H=%.2f C=%.2f A=%.2f (RU)\n", c.Attr.Hardness, c.Attr.Cohesiveness, c.Attr.Adhesiveness)
	fmt.Fprintf(&sb, "  nearest study: %s (Δ=%.2f)\n", c.NearestMeasurement.ID, c.MeasurementDist)
	senses := c.SenseSummary()
	if len(senses) > 0 {
		keys := make([]string, 0, len(senses))
		for s := range senses {
			keys = append(keys, s.String())
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, "  reads: %s\n", strings.Join(keys, ", "))
	}
	return sb.String()
}

// WireCard is the JSON projection of a Card used by cmd/annotate.
type WireCard struct {
	RecipeID string              `json:"recipe_id"`
	Title    string              `json:"title"`
	Topic    int                 `json:"topic"`
	Prob     float64             `json:"prob"`
	Expected []WireTerm          `json:"expected"`
	Attr     rheology.Attributes `json:"rheology"`
	Nearest  string              `json:"nearest_study"`
}

// WireTerm is one expected term on the wire.
type WireTerm struct {
	Romaji string  `json:"romaji"`
	Kana   string  `json:"kana"`
	Gloss  string  `json:"gloss"`
	Prob   float64 `json:"prob"`
}

// Wire projects the card to its JSON form.
func (c *Card) Wire() WireCard {
	w := WireCard{
		RecipeID: c.RecipeID,
		Title:    c.Title,
		Topic:    c.Topic,
		Prob:     c.TopicProb,
		Attr:     c.Attr,
		Nearest:  c.NearestMeasurement.ID,
	}
	for _, te := range c.Expected {
		w.Expected = append(w.Expected, WireTerm{
			Romaji: te.Term.Romaji, Kana: te.Term.Kana, Gloss: te.Term.Gloss, Prob: te.Prob,
		})
	}
	return w
}
