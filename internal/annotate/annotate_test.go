package annotate

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/pipeline"
	"repro/internal/recipe"
)

var (
	fixOnce sync.Once
	fixOut  *pipeline.Output
	fixErr  error
)

func fixture(t *testing.T) *pipeline.Output {
	t.Helper()
	fixOnce.Do(func() {
		// Full scale: the soft-vs-hard test needs the 38-recipe firm
		// gelatin population recovered as its own topic.
		fixOut, fixErr = pipeline.Run(pipeline.DefaultOptions())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixOut
}

func newAnnotator(t *testing.T) *Annotator {
	t.Helper()
	a, err := New(fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func jelly(t *testing.T, gelatinGrams string, desc string) *recipe.Recipe {
	t.Helper()
	r := &recipe.Recipe{
		ID:          "test-jelly",
		Title:       "テストゼリー",
		Description: desc,
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: gelatinGrams},
			{Name: "砂糖", Amount: "30g"},
			{Name: "水", Amount: "400ml"},
		},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnnotateSoftVsHard(t *testing.T) {
	a := newAnnotator(t)
	// ~1% gelatin: expected soft vocabulary; ~5.5%: hard vocabulary.
	soft, err := a.Annotate(context.Background(), jelly(t, "4g", ""))
	if err != nil {
		t.Fatal(err)
	}
	hard, err := a.Annotate(context.Background(), jelly(t, "26g", ""))
	if err != nil {
		t.Fatal(err)
	}
	if soft.Topic == hard.Topic {
		t.Errorf("soft and hard recipes share topic %d", soft.Topic)
	}
	score := func(c *Card) float64 {
		s := 0.0
		for _, te := range c.Expected {
			s += te.Prob * te.Term.Hardness
		}
		return s
	}
	if !(score(soft) < score(hard)) {
		t.Errorf("expected-term hardness: soft %.3f vs hard %.3f", score(soft), score(hard))
	}
}

func TestAnnotateUsesMinedTerms(t *testing.T) {
	a := newAnnotator(t)
	card, err := a.Annotate(context.Background(), jelly(t, "4g", "ぷるぷるでとてもおいしい"))
	if err != nil {
		t.Fatal(err)
	}
	if len(card.MinedTerms) != 1 || card.MinedTerms[0].Romaji != "purupuru" {
		t.Errorf("mined = %v", card.MinedTerms)
	}
	if len(card.Expected) == 0 {
		t.Error("no expected terms")
	}
	if card.TopicProb <= 0 || card.TopicProb > 1 {
		t.Errorf("topic prob = %g", card.TopicProb)
	}
}

func TestAnnotateRejectsGelFree(t *testing.T) {
	a := newAnnotator(t)
	r := &recipe.Recipe{
		ID: "salad",
		Ingredients: []recipe.Ingredient{
			{Name: "水", Amount: "100ml"},
		},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Annotate(context.Background(), r); err == nil {
		t.Error("gel-free recipe should be rejected")
	}
}

func TestAnnotateResolvesLazily(t *testing.T) {
	a := newAnnotator(t)
	r := &recipe.Recipe{
		ID:    "lazy",
		Title: "未解決レシピ",
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "水", Amount: "400ml"},
		},
	}
	card, err := a.Annotate(context.Background(), r) // not resolved by the caller
	if err != nil {
		t.Fatal(err)
	}
	if card.RecipeID != "lazy" {
		t.Error("card identity")
	}
	// And unparseable amounts surface as errors.
	bad := &recipe.Recipe{ID: "bad", Ingredients: []recipe.Ingredient{{Name: "ゼラチン", Amount: "たっぷり"}}}
	if _, err := a.Annotate(context.Background(), bad); err == nil {
		t.Error("unparseable amount should fail")
	}
}

func TestAnnotateNearestMeasurement(t *testing.T) {
	a := newAnnotator(t)
	// 2.5% gelatin, Bavarois-style emulsions → nearest study should be a
	// 2.5% gelatin measurement (Table I data 3, Bavarois or Milk jelly).
	r := &recipe.Recipe{
		ID: "bav",
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "10g"},
			{Name: "卵黄", Amount: "2個"},
			{Name: "生クリーム", Amount: "80ml"},
			{Name: "牛乳", Amount: "160ml"},
			{Name: "水", Amount: "110ml"},
		},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	card, err := a.Annotate(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	switch card.NearestMeasurement.ID {
	case "3", "Bavarois", "Milk jelly":
	default:
		t.Errorf("nearest study = %s, want a 2.5%% gelatin measurement", card.NearestMeasurement.ID)
	}
}

func TestAnnotateAll(t *testing.T) {
	a := newAnnotator(t)
	good := jelly(t, "5g", "")
	bad := &recipe.Recipe{ID: "nogel", Ingredients: []recipe.Ingredient{{Name: "水", Amount: "100ml"}}}
	if err := bad.Resolve(); err != nil {
		t.Fatal(err)
	}
	cards, errs := a.AnnotateAll(context.Background(), []*recipe.Recipe{good, bad})
	if cards[0] == nil || errs[0] != nil {
		t.Errorf("good recipe: %v", errs[0])
	}
	if cards[1] != nil || errs[1] == nil {
		t.Error("bad recipe should fail")
	}
}

func TestCardRenderAndWire(t *testing.T) {
	a := newAnnotator(t)
	card, err := a.Annotate(context.Background(), jelly(t, "5g", "ぷるぷる"))
	if err != nil {
		t.Fatal(err)
	}
	s := card.String()
	for _, want := range []string{"texture card", "topic", "rheology", "nearest study"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	w := card.Wire()
	if w.RecipeID != card.RecipeID || len(w.Expected) != len(card.Expected) {
		t.Error("wire projection lost data")
	}
	senses := card.SenseSummary()
	if len(senses) == 0 {
		t.Error("no sense summary")
	}
	_ = lexicon.SenseHard
}

func TestAnnotateErrorClasses(t *testing.T) {
	a := newAnnotator(t)
	// Recipe-caused failures carry ErrRecipe so HTTP layers answer 4xx.
	nogel := &recipe.Recipe{ID: "salad", Ingredients: []recipe.Ingredient{{Name: "水", Amount: "100ml"}}}
	if _, err := a.Annotate(context.Background(), nogel); !errors.Is(err, ErrRecipe) {
		t.Errorf("gel-free recipe error = %v, want ErrRecipe", err)
	}
	unparseable := &recipe.Recipe{ID: "bad", Ingredients: []recipe.Ingredient{{Name: "ゼラチン", Amount: "たっぷり"}}}
	if _, err := a.Annotate(context.Background(), unparseable); !errors.Is(err, ErrRecipe) {
		t.Errorf("unparseable amount error = %v, want ErrRecipe", err)
	}
	// A dead context surfaces as cancellation, not a recipe fault.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.Annotate(ctx, jelly(t, "5g", ""))
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled annotate = %v, want core.ErrCanceled", err)
	}
	if errors.Is(err, ErrRecipe) {
		t.Error("cancellation must not read as a recipe fault")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil output should fail")
	}
	if _, err := New(&pipeline.Output{}); err == nil {
		t.Error("unfitted output should fail")
	}
}
