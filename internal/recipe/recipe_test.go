package recipe

import (
	"bytes"
	"math"
	"testing"
)

// jellyRecipe is 5 g gelatin + 45 g sugar + 450 g water: a 1%
// gelatin, 9% sugar jelly with total weight 500 g.
func jellyRecipe() *Recipe {
	return &Recipe{
		ID:    "r1",
		Title: "ぷるぷるゼリー",
		Ingredients: []Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "砂糖", Amount: "45g"},
			{Name: "水", Amount: "450ml"},
		},
	}
}

func TestResolveAndConcentrations(t *testing.T) {
	r := jellyRecipe()
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := r.TotalGrams(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("total = %g, want 500", got)
	}
	gel := r.GelConcentrations()
	if math.Abs(gel[Gelatin]-0.01) > 1e-12 {
		t.Errorf("gelatin conc = %g, want 0.01", gel[Gelatin])
	}
	if gel[Kanten] != 0 || gel[Agar] != 0 {
		t.Error("kanten/agar should be zero")
	}
	emu := r.EmulsionConcentrations()
	if math.Abs(emu[Sugar]-0.09) > 1e-12 {
		t.Errorf("sugar conc = %g, want 0.09", emu[Sugar])
	}
	if !r.HasGel() {
		t.Error("HasGel should be true")
	}
}

func TestResolveUnits(t *testing.T) {
	r := &Recipe{
		ID: "r2",
		Ingredients: []Ingredient{
			{Name: "板ゼラチン", Amount: "4枚"},   // 4 × 1.5 g = 6 g
			{Name: "牛乳", Amount: "1カップ"},    // 200 mL × 1.03 = 206 g
			{Name: "砂糖", Amount: "大さじ2"},    // 2 × 15 × 0.6 = 18 g
			{Name: "生クリーム", Amount: "1パック"}, // 200 g
		},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 206, 18, 200}
	for i, w := range want {
		if math.Abs(r.Ingredients[i].Grams-w) > 1e-9 {
			t.Errorf("%s = %g g, want %g", r.Ingredients[i].Name, r.Ingredients[i].Grams, w)
		}
	}
}

func TestResolveAliasesAndScripts(t *testing.T) {
	r := &Recipe{ID: "r3", Ingredients: []Ingredient{
		{Name: "グラニュー糖", Amount: "10g"},
		{Name: "ミルク", Amount: "100ml"},
		{Name: "粉ゼラチン", Amount: "3g"},
	}}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if r.Ingredients[0].Emulsion != Sugar || r.Ingredients[0].Category != CategoryEmulsion {
		t.Error("グラニュー糖 should resolve to sugar")
	}
	if r.Ingredients[1].Emulsion != Milk {
		t.Error("ミルク should resolve to milk")
	}
	if r.Ingredients[2].Gel != Gelatin {
		t.Error("粉ゼラチン should resolve to gelatin")
	}
}

func TestResolveUnknownIngredient(t *testing.T) {
	r := &Recipe{ID: "r4", Ingredients: []Ingredient{
		{Name: "謎の食材", Amount: "50g"},
		{Name: "ゼラチン", Amount: "5g"},
	}}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if r.Ingredients[0].Known {
		t.Error("unknown ingredient marked known")
	}
	if r.Ingredients[0].Category != CategoryOther {
		t.Error("unknown ingredient should be CategoryOther")
	}
	if r.Ingredients[0].Grams != 50 {
		t.Error("grams should still resolve")
	}
}

func TestResolveBadAmount(t *testing.T) {
	r := &Recipe{ID: "r5", Ingredients: []Ingredient{{Name: "水", Amount: "たくさん"}}}
	if err := r.Resolve(); err == nil {
		t.Error("unparseable amount should error")
	}
}

func TestUnrelatedFraction(t *testing.T) {
	r := &Recipe{ID: "r6", Ingredients: []Ingredient{
		{Name: "ゼラチン", Amount: "5g"},
		{Name: "水", Amount: "415ml"},
		{Name: "いちご", Amount: "80g"}, // 16% of 500
	}}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := r.UnrelatedFraction(); math.Abs(got-0.16) > 1e-9 {
		t.Errorf("unrelated = %g, want 0.16", got)
	}
	// Juice counts as base, not unrelated.
	r2 := &Recipe{ID: "r7", Ingredients: []Ingredient{
		{Name: "ゼラチン", Amount: "5g"},
		{Name: "ジュース", Amount: "495ml"},
	}}
	if err := r2.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := r2.UnrelatedFraction(); got != 0 {
		t.Errorf("juice-based recipe unrelated = %g, want 0", got)
	}
}

func TestInfoQuantity(t *testing.T) {
	if got := InfoQuantity(0.01); math.Abs(got-math.Log(100)) > 1e-12 {
		t.Errorf("InfoQuantity(0.01) = %g", got)
	}
	// Zero floors at epsilon.
	if got := InfoQuantity(0); math.Abs(got+math.Log(EpsilonConcentration)) > 1e-12 {
		t.Errorf("InfoQuantity(0) = %g", got)
	}
	// Monotone decreasing.
	if InfoQuantity(0.02) >= InfoQuantity(0.01) {
		t.Error("InfoQuantity should decrease with concentration")
	}
	// Values above 1 clamp.
	if got := InfoQuantity(2); got != 0 {
		t.Errorf("InfoQuantity(2) = %g, want 0", got)
	}
	// Round trip.
	for _, x := range []float64{0.001, 0.01, 0.3, 1} {
		if got := Concentration(InfoQuantity(x)); math.Abs(got-x) > 1e-12 {
			t.Errorf("round trip %g → %g", x, got)
		}
	}
}

func TestInfoQuantityEps(t *testing.T) {
	if got := InfoQuantityEps(0, 0.01); math.Abs(got-math.Log(100)) > 1e-12 {
		t.Errorf("InfoQuantityEps = %g", got)
	}
}

func TestFeatureVectors(t *testing.T) {
	r := jellyRecipe()
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	gf := r.GelFeatures()
	if len(gf) != NumGels {
		t.Fatalf("gel features len %d", len(gf))
	}
	if math.Abs(gf[Gelatin]-InfoQuantity(0.01)) > 1e-12 {
		t.Errorf("gel feature = %g", gf[Gelatin])
	}
	if gf[Kanten] != InfoQuantity(0) {
		t.Error("absent gel should be at the epsilon feature")
	}
	ef := r.EmulsionFeatures()
	if len(ef) != NumEmulsions {
		t.Fatalf("emulsion features len %d", len(ef))
	}
	if math.Abs(ef[Sugar]-InfoQuantity(0.09)) > 1e-12 {
		t.Errorf("sugar feature = %g", ef[Sugar])
	}
	// Round-trip through ConcentrationVector.
	back := ConcentrationVector(gf)
	if math.Abs(back[Gelatin]-0.01) > 1e-12 {
		t.Errorf("round trip = %g", back[Gelatin])
	}
}

func TestFilter(t *testing.T) {
	mk := func(id string, ings ...Ingredient) *Recipe {
		r := &Recipe{ID: id, Ingredients: ings}
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	good := mk("good",
		Ingredient{Name: "ゼラチン", Amount: "5g"},
		Ingredient{Name: "水", Amount: "495ml"})
	noGel := mk("nogel",
		Ingredient{Name: "砂糖", Amount: "50g"},
		Ingredient{Name: "水", Amount: "450ml"})
	fruity := mk("fruity",
		Ingredient{Name: "ゼラチン", Amount: "5g"},
		Ingredient{Name: "水", Amount: "295ml"},
		Ingredient{Name: "いちご", Amount: "200g"})

	kept, stats := Filter([]*Recipe{good, noGel, fruity}, DefaultFilterConfig())
	if len(kept) != 1 || kept[0].ID != "good" {
		t.Fatalf("kept = %v", kept)
	}
	if stats.NoGel != 1 || stats.TooUnrelated != 1 || stats.Kept != 1 || stats.Input != 3 {
		t.Errorf("stats = %+v", stats)
	}

	// Texture requirement delegated.
	cfg := DefaultFilterConfig()
	cfg.RequireTexture = true
	cfg.HasTexture = func(r *Recipe) bool { return r.ID != "good" }
	kept, stats = Filter([]*Recipe{good, fruity}, cfg)
	if len(kept) != 0 || stats.NoTexture != 1 {
		t.Errorf("texture filter: kept=%d stats=%+v", len(kept), stats)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := jellyRecipe()
	r.Description = "ぷるぷるです"
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Recipe{r}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "r1" || got[0].Description != "ぷるぷるです" ||
		len(got[0].Ingredients) != 3 || got[0].Ingredients[0].Name != "ゼラチン" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDocsJSONRoundTrip(t *testing.T) {
	docs := []Doc{{RecipeID: "a", TermIDs: []int{1, 2}, Gel: []float64{1, 2, 3}, Emulsion: make([]float64, 6), Truth: 4}}
	var buf bytes.Buffer
	if err := WriteDocsJSON(&buf, docs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].RecipeID != "a" || got[0].Truth != 4 || len(got[0].TermIDs) != 2 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if Gelatin.String() != "gelatin" || Kanten.String() != "kanten" || Agar.String() != "agar" {
		t.Error("gel strings")
	}
	if Sugar.String() != "sugar" || Yogurt.String() != "yogurt" {
		t.Error("emulsion strings")
	}
	if CategoryGel.String() != "gel" || CategoryWater.String() != "water" {
		t.Error("category strings")
	}
}

func TestLookupIngredient(t *testing.T) {
	info, ok := LookupIngredient("ゼラチン")
	if !ok || info.Gel != Gelatin {
		t.Error("ゼラチン lookup failed")
	}
	// Katakana/hiragana/alias variants.
	if _, ok := LookupIngredient("あがー"); !ok {
		t.Error("alias lookup failed")
	}
	if _, ok := LookupIngredient("存在しない"); ok {
		t.Error("unexpected lookup hit")
	}
	if len(KnownIngredients()) < 20 {
		t.Error("registry suspiciously small")
	}
}

// Resolve is idempotent: resolving twice changes nothing.
func TestResolveIdempotent(t *testing.T) {
	r := jellyRecipe()
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	first := make([]float64, len(r.Ingredients))
	for i, ing := range r.Ingredients {
		first[i] = ing.Grams
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	for i, ing := range r.Ingredients {
		if ing.Grams != first[i] {
			t.Fatalf("ingredient %d changed on re-resolve: %g vs %g", i, ing.Grams, first[i])
		}
	}
}

// Concentration vectors always sum to at most 1 and are non-negative.
func TestConcentrationInvariants(t *testing.T) {
	r := jellyRecipe()
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	gels := r.GelConcentrations()
	emus := r.EmulsionConcentrations()
	sum := 0.0
	for _, c := range gels {
		if c < 0 {
			t.Fatal("negative gel concentration")
		}
		sum += c
	}
	for _, c := range emus {
		if c < 0 {
			t.Fatal("negative emulsion concentration")
		}
		sum += c
	}
	if sum > 1+1e-12 {
		t.Fatalf("concentrations sum to %g", sum)
	}
	// Zero-weight recipe: all zero, no NaN.
	empty := &Recipe{ID: "e"}
	for _, c := range empty.GelConcentrations() {
		if c != 0 {
			t.Fatal("empty recipe should have zero concentrations")
		}
	}
	if empty.UnrelatedFraction() != 0 {
		t.Fatal("empty recipe unrelated fraction")
	}
}
