package recipe

// FilterConfig holds the dataset inclusion rules of the paper's
// Section IV.A.
type FilterConfig struct {
	// MaxUnrelatedFraction excludes recipes whose solid, gel-unrelated
	// ingredients exceed this weight share. The paper uses 0.10.
	MaxUnrelatedFraction float64
	// RequireGel excludes recipes without any gel ingredient.
	RequireGel bool
	// RequireTexture excludes recipes whose description carries no
	// dictionary texture term. The check is delegated: HasTexture is
	// called with the recipe and must report whether terms were found,
	// keeping this package independent of the lexicon.
	RequireTexture bool
	HasTexture     func(*Recipe) bool
}

// DefaultFilterConfig reproduces the paper's rules.
func DefaultFilterConfig() FilterConfig {
	return FilterConfig{
		MaxUnrelatedFraction: 0.10,
		RequireGel:           true,
		RequireTexture:       false,
	}
}

// FilterStats reports why recipes were dropped.
type FilterStats struct {
	Input        int
	Kept         int
	NoGel        int
	NoTexture    int
	TooUnrelated int
}

// Admit applies the config to one resolved recipe, tallying the drop
// reason (and Input) into stats. The record-at-a-time form of Filter,
// for streaming ingestion that never holds the corpus in memory.
func (cfg FilterConfig) Admit(r *Recipe, stats *FilterStats) bool {
	stats.Input++
	switch {
	case cfg.RequireGel && !r.HasGel():
		stats.NoGel++
	case cfg.RequireTexture && cfg.HasTexture != nil && !cfg.HasTexture(r):
		stats.NoTexture++
	case cfg.MaxUnrelatedFraction > 0 && r.UnrelatedFraction() > cfg.MaxUnrelatedFraction:
		stats.TooUnrelated++
	default:
		stats.Kept++
		return true
	}
	return false
}

// Filter applies the config and returns the surviving recipes along
// with drop statistics. Recipes must be resolved first.
func Filter(recipes []*Recipe, cfg FilterConfig) ([]*Recipe, FilterStats) {
	var stats FilterStats
	var kept []*Recipe
	for _, r := range recipes {
		if cfg.Admit(r, &stats) {
			kept = append(kept, r)
		}
	}
	return kept, stats
}
