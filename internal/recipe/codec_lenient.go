package recipe

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultMaxRecordBytes is the lenient decoders' per-record size cap.
// A single recipe is a few KB; a megabyte-sized element is a scrape
// artifact (or an attack), not data.
const DefaultMaxRecordBytes = 1 << 20

// SkippedRecord reports one array element the lenient decoder dropped.
type SkippedRecord struct {
	// Index is the element's position in the input array.
	Index int `json:"index"`
	// Offset is the byte offset in the input stream where the element
	// began — enough to find it in the source file.
	Offset int64 `json:"offset"`
	// Reason says why it was dropped (unmarshal error, size cap, null).
	Reason string `json:"reason"`
}

// DecodeReport summarizes a lenient decode: how many records made it
// and exactly which ones did not.
type DecodeReport struct {
	// Decoded counts records successfully decoded.
	Decoded int `json:"decoded"`
	// Skipped lists every dropped record in input order.
	Skipped []SkippedRecord `json:"skipped,omitempty"`
}

// ReadJSONLenient reads a JSON array of recipes like ReadJSON, but in
// a streaming element-at-a-time mode that skips malformed records
// instead of failing the whole file — the reality of scraped recipe
// dumps, where one bad row should not discard a million good ones.
// Records larger than maxRecordBytes (DefaultMaxRecordBytes when ≤ 0)
// and JSON null elements are skipped too. Every skip is reported with
// its array index and byte offset.
//
// Leniency is per-element only: the input must still be one
// well-formed JSON array. A syntax error breaks the element framing
// itself — there is no safe way to resynchronize — so it fails the
// decode like ReadJSON does.
func ReadJSONLenient(r io.Reader, maxRecordBytes int) ([]*Recipe, *DecodeReport, error) {
	return decodeLenient[*Recipe](r, maxRecordBytes, "recipe")
}

// ReadDocsJSONLenient is ReadJSONLenient for model-ready docs.
func ReadDocsJSONLenient(r io.Reader, maxRecordBytes int) ([]Doc, *DecodeReport, error) {
	return decodeLenient[Doc](r, maxRecordBytes, "doc")
}

// validLenient filters decoded values the report should still skip:
// a JSON null decodes into a nil *Recipe without error, and nothing
// downstream tolerates nil recipes.
func validLenient(v any) (string, bool) {
	if p, ok := v.(*Recipe); ok && p == nil {
		return "null record", false
	}
	return "", true
}

func decodeLenient[T any](r io.Reader, maxRecordBytes int, what string) ([]T, *DecodeReport, error) {
	if maxRecordBytes <= 0 {
		maxRecordBytes = DefaultMaxRecordBytes
	}
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, nil, fmt.Errorf("recipe: decoding %ss: %w", what, err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return nil, nil, fmt.Errorf("recipe: decoding %ss: input is not a JSON array (starts with %v)", what, tok)
	}
	var out []T
	report := &DecodeReport{}
	for index := 0; dec.More(); index++ {
		offset := dec.InputOffset()
		// Capture the raw element first: a per-record size or unmarshal
		// problem must consume exactly one element and move on. Only a
		// raw-level error is a syntax error in the framing itself — fatal.
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, nil, fmt.Errorf("recipe: decoding %ss: array element %d at offset %d: %w",
				what, index, offset, err)
		}
		if len(raw) > maxRecordBytes {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: fmt.Sprintf("record is %d bytes, cap is %d", len(raw), maxRecordBytes),
			})
			continue
		}
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: err.Error(),
			})
			continue
		}
		if reason, ok := validLenient(v); !ok {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: reason,
			})
			continue
		}
		out = append(out, v)
		report.Decoded++
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return nil, nil, fmt.Errorf("recipe: decoding %ss: unterminated array: %w", what, err)
	}
	return out, report, nil
}
