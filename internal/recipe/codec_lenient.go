package recipe

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// DefaultMaxRecordBytes is the lenient decoders' per-record size cap.
// A single recipe is a few KB; a megabyte-sized element is a scrape
// artifact (or an attack), not data.
const DefaultMaxRecordBytes = 1 << 20

// SkippedRecord reports one record the lenient decoder dropped.
type SkippedRecord struct {
	// Index is the record's position in the input (array element index
	// or JSONL record index, blank lines excluded).
	Index int `json:"index"`
	// Offset is the byte offset in the input stream where the record
	// itself begins (leading whitespace excluded) — enough to seek to it
	// in the source file.
	Offset int64 `json:"offset"`
	// Reason says why it was dropped (unmarshal error, size cap, null).
	Reason string `json:"reason"`
}

// DecodeReport summarizes a lenient decode: how many records made it
// and exactly which ones did not.
type DecodeReport struct {
	// Decoded counts records successfully decoded.
	Decoded int `json:"decoded"`
	// Skipped lists every dropped record in input order.
	Skipped []SkippedRecord `json:"skipped,omitempty"`
}

// ReadJSONLenient reads recipes like ReadJSON, but in a streaming
// record-at-a-time mode that skips malformed records instead of
// failing the whole file — the reality of scraped recipe dumps, where
// one bad row should not discard a million good ones. It accepts both
// framings StreamJSONLenient does (JSON array and JSONL); see there
// for the leniency contract.
func ReadJSONLenient(r io.Reader, maxRecordBytes int) ([]*Recipe, *DecodeReport, error) {
	var out []*Recipe
	report, err := streamLenient(r, maxRecordBytes, "recipe", func(rec *Recipe) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, report, nil
}

// StreamJSONLenient is the callback form of ReadJSONLenient: each
// successfully decoded recipe is handed to fn without the decoder ever
// holding more than one record in memory, which is what lets corpus
// ingestion run in O(batch) rather than O(corpus) memory. A non-nil
// error from fn aborts the stream and is returned verbatim.
//
// Two framings are auto-detected from the first non-whitespace byte:
// a '[' starts a JSON array (ReadJSON's format); anything else is
// treated as JSONL, one JSON object per line. Leniency differs with
// the framing: inside an array a record-level problem (unmarshal
// error, size cap, null) skips that element, but a syntax error breaks
// the element framing itself and fails the decode; in JSONL mode the
// newline re-synchronizes the stream, so even a syntactically mangled
// line skips just that line. Records larger than maxRecordBytes
// (DefaultMaxRecordBytes when ≤ 0) are skipped without buffering them.
// Every skip is reported with its record index and the byte offset of
// the record start.
func StreamJSONLenient(r io.Reader, maxRecordBytes int, fn func(*Recipe) error) (*DecodeReport, error) {
	return streamLenient(r, maxRecordBytes, "recipe", fn)
}

// ReadDocsJSONLenient is ReadJSONLenient for model-ready docs.
func ReadDocsJSONLenient(r io.Reader, maxRecordBytes int) ([]Doc, *DecodeReport, error) {
	var out []Doc
	report, err := streamLenient(r, maxRecordBytes, "doc", func(d Doc) error {
		out = append(out, d)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, report, nil
}

// validLenient filters decoded values the report should still skip:
// a JSON null decodes into a nil *Recipe without error, and nothing
// downstream tolerates nil recipes.
func validLenient(v any) (string, bool) {
	if p, ok := v.(*Recipe); ok && p == nil {
		return "null record", false
	}
	return "", true
}

// streamLenient detects the input framing and streams records through
// emit. See StreamJSONLenient for the contract.
func streamLenient[T any](r io.Reader, maxRecordBytes int, what string, emit func(T) error) (*DecodeReport, error) {
	if maxRecordBytes <= 0 {
		maxRecordBytes = DefaultMaxRecordBytes
	}
	br := bufio.NewReaderSize(r, 64<<10)
	first, err := peekNonSpace(br)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("recipe: decoding %ss: empty input", what)
		}
		return nil, fmt.Errorf("recipe: decoding %ss: %w", what, err)
	}
	if first == '[' {
		return streamArrayLenient(br, maxRecordBytes, what, emit)
	}
	return streamLinesLenient(br, maxRecordBytes, what, emit)
}

// peekNonSpace returns the first byte past any JSON whitespace without
// consuming it.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.Peek(1)
		if err != nil {
			return 0, err
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			if _, err := br.Discard(1); err != nil {
				return 0, err
			}
		default:
			return b[0], nil
		}
	}
}

// streamArrayLenient walks one well-formed JSON array element by
// element. Leniency is per-element only: a syntax error breaks the
// element framing itself — there is no safe way to resynchronize — so
// it fails the decode like ReadJSON does.
func streamArrayLenient[T any](br *bufio.Reader, maxRecordBytes int, what string, emit func(T) error) (*DecodeReport, error) {
	dec := json.NewDecoder(br)
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("recipe: decoding %ss: %w", what, err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return nil, fmt.Errorf("recipe: decoding %ss: input is not a JSON array (starts with %v)", what, tok)
	}
	report := &DecodeReport{}
	for index := 0; dec.More(); index++ {
		// Capture the raw element first: a per-record size or unmarshal
		// problem must consume exactly one element and move on. Only a
		// raw-level error is a syntax error in the framing itself — fatal.
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("recipe: decoding %ss: array element %d near offset %d: %w",
				what, index, dec.InputOffset(), err)
		}
		// The decoder hands the element's bytes back verbatim, so the
		// record started exactly len(raw) bytes before the decoder's
		// current position — not at the post-read offset of the previous
		// element, which is what a seek-to-the-bad-record log needs.
		offset := dec.InputOffset() - int64(len(raw))
		if len(raw) > maxRecordBytes {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: fmt.Sprintf("record is %d bytes, cap is %d", len(raw), maxRecordBytes),
			})
			continue
		}
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: err.Error(),
			})
			continue
		}
		if reason, ok := validLenient(v); !ok {
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: offset,
				Reason: reason,
			})
			continue
		}
		if err := emit(v); err != nil {
			return nil, err
		}
		report.Decoded++
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return nil, fmt.Errorf("recipe: decoding %ss: unterminated array: %w", what, err)
	}
	return report, nil
}

// streamLinesLenient walks JSONL input: one record per line, blank
// lines ignored. The newline is a resynchronization point, so every
// per-line problem — syntax damage included — skips exactly that line.
// Oversized lines are skipped without ever buffering more than the cap.
func streamLinesLenient[T any](br *bufio.Reader, maxRecordBytes int, what string, emit func(T) error) (*DecodeReport, error) {
	report := &DecodeReport{}
	var pos int64 // byte offset of the next line's start
	for index := 0; ; {
		kept, lineLen, consumed, err := readCappedLine(br, maxRecordBytes)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("recipe: decoding %ss: reading line at offset %d: %w", what, pos, err)
		}
		lineStart := pos
		pos += consumed
		atEOF := err == io.EOF
		if consumed == 0 && atEOF {
			return report, nil
		}
		trimmed := bytes.TrimSpace(kept)
		if len(trimmed) == 0 && lineLen <= int64(len(kept)) {
			// Genuinely blank line (not an oversized all-whitespace one,
			// which the size cap below reports).
			if atEOF {
				return report, nil
			}
			continue
		}
		// Record start = line start + leading whitespace.
		recStart := lineStart
		if i := bytes.IndexFunc(kept, notSpace); i > 0 {
			recStart += int64(i)
		}
		switch {
		case lineLen > int64(maxRecordBytes):
			report.Skipped = append(report.Skipped, SkippedRecord{
				Index:  index,
				Offset: recStart,
				Reason: fmt.Sprintf("record is %d bytes, cap is %d", lineLen, maxRecordBytes),
			})
		default:
			var v T
			if uerr := json.Unmarshal(trimmed, &v); uerr != nil {
				report.Skipped = append(report.Skipped, SkippedRecord{
					Index:  index,
					Offset: recStart,
					Reason: uerr.Error(),
				})
			} else if reason, ok := validLenient(v); !ok {
				report.Skipped = append(report.Skipped, SkippedRecord{
					Index:  index,
					Offset: recStart,
					Reason: reason,
				})
			} else {
				if eerr := emit(v); eerr != nil {
					return nil, eerr
				}
				report.Decoded++
			}
		}
		index++
		if atEOF {
			return report, nil
		}
	}
}

func notSpace(r rune) bool {
	switch r {
	case ' ', '\t', '\r', '\n':
		return false
	}
	return true
}

// readCappedLine reads one newline-terminated line, retaining at most
// keep bytes of its content, and reports the full content length
// (newline excluded) plus the total bytes consumed (newline included).
// The tail of an over-cap line is consumed and discarded, never
// buffered. A final line without a trailing newline returns io.EOF
// alongside its content.
func readCappedLine(br *bufio.Reader, keep int) (kept []byte, lineLen int64, consumed int64, err error) {
	for {
		chunk, cerr := br.ReadSlice('\n')
		consumed += int64(len(chunk))
		content := chunk
		if cerr == nil { // delimiter found
			content = chunk[:len(chunk)-1]
		}
		lineLen += int64(len(content))
		if room := keep - len(kept); room > 0 {
			if len(content) > room {
				content = content[:room]
			}
			kept = append(kept, content...)
		}
		if cerr == bufio.ErrBufferFull {
			continue
		}
		return kept, lineLen, consumed, cerr
	}
}
