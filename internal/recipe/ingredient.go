// Package recipe models posted recipes and derives the features the
// paper's pipeline consumes: per-recipe gel and emulsion concentration
// vectors (as −log information quantities) and the total-weight
// bookkeeping needed to compute them.
package recipe

import (
	"repro/internal/textseg"
	"repro/internal/units"
)

// Gel indexes the three gelling agents the paper studies.
type Gel int

// Gel ingredient axes, in the paper's column order.
const (
	Gelatin Gel = iota
	Kanten
	Agar
	NumGels = 3
)

// String names the gel.
func (g Gel) String() string {
	switch g {
	case Gelatin:
		return "gelatin"
	case Kanten:
		return "kanten"
	case Agar:
		return "agar"
	default:
		return "?"
	}
}

// Emulsion indexes the six emulsion ingredients the paper tracks.
type Emulsion int

// Emulsion ingredient axes, in the paper's column order (Table II(b)).
const (
	Sugar Emulsion = iota
	EggAlbumen
	EggYolk
	RawCream
	Milk
	Yogurt
	NumEmulsions = 6
)

// String names the emulsion.
func (e Emulsion) String() string {
	switch e {
	case Sugar:
		return "sugar"
	case EggAlbumen:
		return "egg albumen"
	case EggYolk:
		return "egg yolk"
	case RawCream:
		return "raw cream"
	case Milk:
		return "milk"
	case Yogurt:
		return "yogurt"
	default:
		return "?"
	}
}

// Category classifies an ingredient's role in the pipeline.
type Category int

// Ingredient categories. Water and liquid bases (juice, coffee, tea)
// dissolve the gel and are not counted as "unrelated"; Other covers
// solid additions (fruit pieces, nuts, cookies) whose share drives the
// paper's 10% exclusion rule.
const (
	CategoryOther Category = iota
	CategoryGel
	CategoryEmulsion
	CategoryWater
	CategoryBase
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryGel:
		return "gel"
	case CategoryEmulsion:
		return "emulsion"
	case CategoryWater:
		return "water"
	case CategoryBase:
		return "base"
	default:
		return "other"
	}
}

// Info is the registry entry for a known ingredient.
type Info struct {
	Name     string // canonical Japanese name
	Aliases  []string
	Category Category
	Gel      Gel      // valid when Category == CategoryGel
	Emulsion Emulsion // valid when Category == CategoryEmulsion
	Profile  units.Profile
}

// registry lists the ingredient vocabulary of the pipeline. Density
// values follow the standard Japanese cooking conversion tables; piece
// weights are the customary ones (M-size egg 50 g, gelatin sheet 1.5 g,
// kanten stick 8 g).
var registry = []Info{
	// Gels.
	{Name: "ゼラチン", Aliases: []string{"粉ゼラチン", "ゼラチンパウダー"}, Category: CategoryGel, Gel: Gelatin,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 5}}, // 1袋 = 5 g stick pack
	{Name: "板ゼラチン", Aliases: []string{"ゼラチンシート"}, Category: CategoryGel, Gel: Gelatin,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 1.5}},
	{Name: "寒天", Aliases: []string{"粉寒天", "寒天パウダー"}, Category: CategoryGel, Gel: Kanten,
		Profile: units.Profile{DensityGPerML: 0.5, PieceGrams: 4}}, // 1袋 = 4 g
	{Name: "棒寒天", Aliases: []string{"角寒天"}, Category: CategoryGel, Gel: Kanten,
		Profile: units.Profile{DensityGPerML: 0.5, PieceGrams: 8}},
	{Name: "アガー", Aliases: []string{"あがー", "アガーパウダー"}, Category: CategoryGel, Gel: Agar,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 5}},
	// Emulsions.
	{Name: "砂糖", Aliases: []string{"グラニュー糖", "上白糖", "きび砂糖"}, Category: CategoryEmulsion, Emulsion: Sugar,
		Profile: units.Profile{DensityGPerML: 0.6}},
	{Name: "卵白", Aliases: []string{"らんぱく"}, Category: CategoryEmulsion, Emulsion: EggAlbumen,
		Profile: units.Profile{DensityGPerML: 1.0, PieceGrams: 30}}, // white of one egg
	{Name: "卵黄", Aliases: []string{"らんおう", "黄身"}, Category: CategoryEmulsion, Emulsion: EggYolk,
		Profile: units.Profile{DensityGPerML: 1.0, PieceGrams: 20}},
	{Name: "生クリーム", Aliases: []string{"クリーム", "ホイップクリーム"}, Category: CategoryEmulsion, Emulsion: RawCream,
		Profile: units.Profile{DensityGPerML: 1.0, PieceGrams: 200}}, // 1パック = 200 mL
	{Name: "牛乳", Aliases: []string{"ミルク", "低脂肪乳"}, Category: CategoryEmulsion, Emulsion: Milk,
		Profile: units.Profile{DensityGPerML: 1.03, PieceGrams: 1000}},
	{Name: "ヨーグルト", Aliases: []string{"プレーンヨーグルト"}, Category: CategoryEmulsion, Emulsion: Yogurt,
		Profile: units.Profile{DensityGPerML: 1.03, PieceGrams: 400}},
	// Water and liquid bases.
	{Name: "水", Aliases: []string{"お湯", "湯", "熱湯", "冷水"}, Category: CategoryWater, Profile: units.WaterProfile},
	{Name: "ジュース", Aliases: []string{"オレンジジュース", "りんごジュース", "ぶどうジュース", "果汁"}, Category: CategoryBase,
		Profile: units.Profile{DensityGPerML: 1.04}},
	{Name: "コーヒー", Aliases: []string{"珈琲"}, Category: CategoryBase, Profile: units.WaterProfile},
	{Name: "紅茶", Aliases: []string{"お茶", "緑茶"}, Category: CategoryBase, Profile: units.WaterProfile},
	{Name: "ワイン", Aliases: []string{"赤ワイン", "白ワイン"}, Category: CategoryBase, Profile: units.WaterProfile},
	{Name: "豆乳", Aliases: []string{}, Category: CategoryBase, Profile: units.Profile{DensityGPerML: 1.03}},
	// Other (solid additions — the unrelated-share drivers).
	{Name: "いちご", Aliases: []string{"苺", "ストロベリー"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 15}},
	{Name: "みかん", Aliases: []string{"みかん缶", "オレンジ"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 80}},
	{Name: "もも", Aliases: []string{"桃", "黄桃缶"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 200}},
	{Name: "バナナ", Aliases: []string{}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 100}},
	{Name: "フルーツ", Aliases: []string{"果物", "フルーツ缶"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.6, PieceGrams: 100}},
	{Name: "あんこ", Aliases: []string{"こしあん", "つぶあん", "小豆"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 1.1, PieceGrams: 200}},
	{Name: "ナッツ", Aliases: []string{"アーモンド", "くるみ", "ピーナッツ"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.5, PieceGrams: 1}},
	{Name: "クッキー", Aliases: []string{"ビスケット", "クラッカー"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.5, PieceGrams: 8}},
	{Name: "グラノーラ", Aliases: []string{"コーンフレーク"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.3}},
	{Name: "抹茶", Aliases: []string{"ココア", "ココアパウダー"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 0.4}},
	{Name: "チョコレート", Aliases: []string{"チョコ", "板チョコ"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 1.2, PieceGrams: 50}},
	{Name: "クリームチーズ", Aliases: []string{"チーズ"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 1.0, PieceGrams: 200}},
	{Name: "はちみつ", Aliases: []string{"蜂蜜", "メープルシロップ"}, Category: CategoryOther,
		Profile: units.Profile{DensityGPerML: 1.4}},
	{Name: "レモン汁", Aliases: []string{"レモン果汁"}, Category: CategoryOther, Profile: units.WaterProfile},
}

// index maps normalized name → registry position.
var index = buildIndex()

func buildIndex() map[string]int {
	idx := make(map[string]int)
	for i, info := range registry {
		idx[textseg.Normalize(info.Name)] = i
		for _, a := range info.Aliases {
			idx[textseg.Normalize(a)] = i
		}
	}
	return idx
}

// LookupIngredient resolves an ingredient name (canonical or alias,
// any script variant) to its registry entry.
func LookupIngredient(name string) (Info, bool) {
	i, ok := index[textseg.Normalize(name)]
	if !ok {
		return Info{}, false
	}
	return registry[i], true
}

// KnownIngredients returns the canonical names in the registry, for
// enumeration by the corpus generator and docs.
func KnownIngredients() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}
