package recipe

import "math"

// EpsilonConcentration is the floor applied to zero concentrations
// before the −log transform. The paper transforms concentrations x to
// the information quantity −log x but does not say how x = 0 (an absent
// ingredient) is handled; a floor of 10⁻⁴ (0.01% by weight — an order
// of magnitude below any functional gel dose) maps absence to a finite
// feature ≈ 9.21 that is clearly separated from the 2–6 range of
// functional concentrations. BenchmarkAblationEpsilon sweeps this
// choice.
const EpsilonConcentration = 1e-4

// InfoQuantity transforms a concentration ratio to the paper's −log(x)
// feature, flooring at EpsilonConcentration.
func InfoQuantity(x float64) float64 {
	if x < EpsilonConcentration {
		x = EpsilonConcentration
	}
	if x > 1 {
		x = 1
	}
	return -math.Log(x)
}

// InfoQuantityEps is InfoQuantity with a caller-chosen floor, used by
// the ablation bench.
func InfoQuantityEps(x, eps float64) float64 {
	if x < eps {
		x = eps
	}
	if x > 1 {
		x = 1
	}
	return -math.Log(x)
}

// Concentration inverts InfoQuantity: feature −log(x) back to the
// ratio x.
func Concentration(feature float64) float64 {
	return math.Exp(-feature)
}

// FeatureVector applies InfoQuantity elementwise.
func FeatureVector(conc []float64) []float64 {
	out := make([]float64, len(conc))
	for i, x := range conc {
		out[i] = InfoQuantity(x)
	}
	return out
}

// ConcentrationVector inverts FeatureVector elementwise.
func ConcentrationVector(feat []float64) []float64 {
	out := make([]float64, len(feat))
	for i, f := range feat {
		out[i] = Concentration(f)
	}
	return out
}

// Doc is the model-ready representation of one recipe: the texture term
// token sequence plus the gel and emulsion feature vectors in −log
// space. This is the exact input shape of the paper's joint topic
// model.
type Doc struct {
	RecipeID string    `json:"recipe_id"`
	TermIDs  []int     `json:"term_ids"` // texture-term tokens, dictionary IDs
	Gel      []float64 `json:"gel"`      // len NumGels, −log space
	Emulsion []float64 `json:"emulsion"` // len NumEmulsions, −log space
	Truth    int       `json:"truth"`    // generator topic label, −1 if unknown
}

// GelFeatures returns the recipe's gel feature vector in −log space.
func (r *Recipe) GelFeatures() []float64 {
	c := r.GelConcentrations()
	return FeatureVector(c[:])
}

// EmulsionFeatures returns the recipe's emulsion feature vector in
// −log space.
func (r *Recipe) EmulsionFeatures() []float64 {
	c := r.EmulsionConcentrations()
	return FeatureVector(c[:])
}
