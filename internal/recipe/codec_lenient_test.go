package recipe

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestReadJSONLenientSkipsMalformedRecords(t *testing.T) {
	input := `[
		{"id":"r1","title":"ゼリー","description":"ぷるぷる"},
		{"id":"r2","title":123,"description":"bad title type"},
		null,
		{"id":"r3","title":"ムース","description":"ふわふわ","ingredients":[{"name":"ゼラチン","amount":"5g"}]}
	]`
	recipes, report, err := ReadJSONLenient(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 2 || recipes[0].ID != "r1" || recipes[1].ID != "r3" {
		t.Fatalf("kept %v, want r1 and r3", recipes)
	}
	if report.Decoded != 2 || len(report.Skipped) != 2 {
		t.Fatalf("report = %+v, want 2 decoded / 2 skipped", report)
	}
	if report.Skipped[0].Index != 1 {
		t.Fatalf("first skip index = %d, want 1 (the type-mismatch record)", report.Skipped[0].Index)
	}
	if report.Skipped[1].Index != 2 || report.Skipped[1].Reason != "null record" {
		t.Fatalf("second skip = %+v, want the null at index 2", report.Skipped[1])
	}
	for _, sk := range report.Skipped {
		if sk.Offset <= 0 {
			t.Fatalf("skip %+v carries no byte offset", sk)
		}
	}
}

func TestReadJSONLenientEnforcesRecordSizeCap(t *testing.T) {
	huge := `{"id":"big","title":"` + strings.Repeat("あ", 400) + `","description":"x"}`
	input := `[{"id":"ok","title":"t","description":"d"},` + huge + `]`
	recipes, report, err := ReadJSONLenient(strings.NewReader(input), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 1 || recipes[0].ID != "ok" {
		t.Fatalf("kept %v, want only the small record", recipes)
	}
	if len(report.Skipped) != 1 || !strings.Contains(report.Skipped[0].Reason, "cap") {
		t.Fatalf("report = %+v, want one size-cap skip", report)
	}
}

// TestReadJSONLenientStrictFraming: leniency is per-element; broken
// array framing cannot be resynchronized and must fail the decode.
// (Input that does not start with '[' is JSONL, not broken framing —
// see TestStreamJSONLenientJSONL.)
func TestReadJSONLenientStrictFraming(t *testing.T) {
	for name, input := range map[string]string{
		"syntax-error": `[{"id":"a"}, {]`,
		"truncated":    `[{"id":"a"},`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadJSONLenient(strings.NewReader(input), 0); err == nil {
				t.Fatal("broken framing decoded without error")
			}
		})
	}
	// A bare object is one JSONL record, a drop-in for single-record
	// ingestion rather than an error.
	recipes, report, err := ReadJSONLenient(strings.NewReader(`{"id":"x","title":"t","description":"d"}`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 1 || recipes[0].ID != "x" || report.Decoded != 1 {
		t.Fatalf("bare object decoded as %v / %+v", recipes, report)
	}
}

// TestReadJSONLenientMatchesStrictOnCleanInput: on a well-formed file
// the lenient decoder is a drop-in for ReadJSON.
func TestReadJSONLenientMatchesStrictOnCleanInput(t *testing.T) {
	recipes := []*Recipe{
		{ID: "a", Title: "t1", Description: "d1", Truth: -1},
		{ID: "b", Title: "t2", Description: "d2", Truth: 2,
			Ingredients: []Ingredient{{Name: "寒天", Amount: "2g"}}},
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, recipes); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, report, err := ReadJSONLenient(strings.NewReader(buf.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Skipped) != 0 || report.Decoded != len(strict) {
		t.Fatalf("report = %+v on clean input", report)
	}
	if len(lenient) != len(strict) {
		t.Fatalf("lenient decoded %d, strict %d", len(lenient), len(strict))
	}
	for i := range strict {
		if !reflect.DeepEqual(lenient[i], strict[i]) {
			t.Fatalf("record %d differs: %+v vs %+v", i, lenient[i], strict[i])
		}
	}
}

func TestReadDocsJSONLenient(t *testing.T) {
	input := `[
		{"recipe_id":"a","term_ids":[1,2],"gel":[0.1],"emulsion":[0.2],"truth":-1},
		{"recipe_id":"b","term_ids":"oops","gel":[0.1],"emulsion":[0.2],"truth":0},
		{"recipe_id":"c","term_ids":[3],"gel":[0.3],"emulsion":[0.4],"truth":1}
	]`
	docs, report, err := ReadDocsJSONLenient(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].RecipeID != "a" || docs[1].RecipeID != "c" {
		t.Fatalf("kept %+v, want docs a and c", docs)
	}
	if len(report.Skipped) != 1 || report.Skipped[0].Index != 1 {
		t.Fatalf("report = %+v, want one skip at index 1", report)
	}
}

// TestReadJSONLenientOffsetIsRecordStart is the regression test for
// the skip-report offsets: they used to carry the decoder's post-read
// position of the *previous* element (pointing at a comma or
// whitespace), not the byte where the bad record begins. Seeking to
// the reported offset must land exactly on the record's first byte.
func TestReadJSONLenientOffsetIsRecordStart(t *testing.T) {
	input := `[ {"id":"r1","title":"t","description":"d"} ,
		{"id":"r2","title":123,"description":"bad"},
		null ]`
	_, report, err := ReadJSONLenient(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Skipped) != 2 {
		t.Fatalf("report = %+v, want 2 skips", report)
	}
	for _, sk := range report.Skipped {
		off := int(sk.Offset)
		if off < 0 || off >= len(input) {
			t.Fatalf("skip %+v: offset outside input", sk)
		}
		rest := input[off:]
		var want string
		switch sk.Index {
		case 1:
			want = `{"id":"r2"`
		case 2:
			want = `null`
		default:
			t.Fatalf("unexpected skip index %d", sk.Index)
		}
		if !strings.HasPrefix(rest, want) {
			t.Errorf("offset %d for record %d points at %q, want the record start %q",
				off, sk.Index, rest[:min(20, len(rest))], want)
		}
	}
}

// TestStreamJSONLenientJSONL: JSONL framing decodes line-at-a-time,
// resynchronizes on newlines after even syntactically broken lines,
// and reports record-start offsets that seek to the bad line.
func TestStreamJSONLenientJSONL(t *testing.T) {
	input := `{"id":"a","title":"t1","description":"d1"}
{"id":"b","title":123}
{broken json
  {"id":"c","title":"t3","description":"d3"}

null
{"id":"d","title":"t4","description":"d4"}`
	var got []string
	report, err := StreamJSONLenient(strings.NewReader(input), 0, func(r *Recipe) error {
		got = append(got, r.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	if report.Decoded != 3 || len(report.Skipped) != 3 {
		t.Fatalf("report = %+v, want 3 decoded / 3 skipped", report)
	}
	for _, sk := range report.Skipped {
		rest := input[sk.Offset:]
		if strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\n") {
			t.Errorf("skip %+v: offset points at whitespace", sk)
		}
	}
	// The indented record c: its skip-free offset contract holds for
	// kept records too — verify via the broken line's offset landing on
	// the '{' of "{broken".
	if idx := strings.Index(input, "{broken"); int64(idx) != report.Skipped[1].Offset {
		t.Errorf("broken-line offset = %d, want %d", report.Skipped[1].Offset, idx)
	}
}

// TestStreamJSONLenientJSONLSizeCap: an oversized line is skipped and
// fully consumed without derailing later records (and without
// buffering it — the cap bounds memory, which this can only assert
// indirectly by the decode succeeding).
func TestStreamJSONLenientJSONLSizeCap(t *testing.T) {
	huge := `{"id":"big","title":"` + strings.Repeat("x", 4096) + `","description":"d"}`
	input := `{"id":"ok1","title":"t","description":"d"}` + "\n" + huge + "\n" +
		`{"id":"ok2","title":"t","description":"d"}` + "\n"
	var got []string
	report, err := StreamJSONLenient(strings.NewReader(input), 256, func(r *Recipe) error {
		got = append(got, r.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ok1", "ok2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	if len(report.Skipped) != 1 || !strings.Contains(report.Skipped[0].Reason, "cap") {
		t.Fatalf("report = %+v, want one size-cap skip", report)
	}
	if report.Skipped[0].Index != 1 {
		t.Errorf("size-cap skip index = %d, want 1", report.Skipped[0].Index)
	}
}

// TestStreamJSONLenientCallbackAbort: a callback error stops the
// stream immediately and surfaces verbatim.
func TestStreamJSONLenientCallbackAbort(t *testing.T) {
	input := `{"id":"a","title":"t","description":"d"}
{"id":"b","title":"t","description":"d"}
{"id":"c","title":"t","description":"d"}`
	sentinel := errors.New("stop here")
	seen := 0
	_, err := StreamJSONLenient(strings.NewReader(input), 0, func(r *Recipe) error {
		seen++
		if r.ID == "b" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's sentinel", err)
	}
	if seen != 2 {
		t.Fatalf("callback ran %d times, want 2", seen)
	}
}

// TestReadJSONLenientJSONLRoundTrip: a JSONL corpus decodes to the
// same records as the equivalent JSON array.
func TestReadJSONLenientJSONLRoundTrip(t *testing.T) {
	recipes := []*Recipe{
		{ID: "a", Title: "t1", Description: "d1", Truth: -1},
		{ID: "b", Title: "t2", Description: "d2", Truth: 2,
			Ingredients: []Ingredient{{Name: "寒天", Amount: "2g"}}},
	}
	var arr strings.Builder
	if err := WriteJSON(&arr, recipes); err != nil {
		t.Fatal(err)
	}
	var lines strings.Builder
	for _, r := range recipes {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines.Write(b)
		lines.WriteByte('\n')
	}
	fromArr, _, err := ReadJSONLenient(strings.NewReader(arr.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	fromLines, _, err := ReadJSONLenient(strings.NewReader(lines.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromArr, fromLines) {
		t.Fatalf("JSONL decode differs from array decode:\n%+v\nvs\n%+v", fromLines, fromArr)
	}
}
