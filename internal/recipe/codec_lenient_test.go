package recipe

import (
	"reflect"
	"strings"
	"testing"
)

func TestReadJSONLenientSkipsMalformedRecords(t *testing.T) {
	input := `[
		{"id":"r1","title":"ゼリー","description":"ぷるぷる"},
		{"id":"r2","title":123,"description":"bad title type"},
		null,
		{"id":"r3","title":"ムース","description":"ふわふわ","ingredients":[{"name":"ゼラチン","amount":"5g"}]}
	]`
	recipes, report, err := ReadJSONLenient(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 2 || recipes[0].ID != "r1" || recipes[1].ID != "r3" {
		t.Fatalf("kept %v, want r1 and r3", recipes)
	}
	if report.Decoded != 2 || len(report.Skipped) != 2 {
		t.Fatalf("report = %+v, want 2 decoded / 2 skipped", report)
	}
	if report.Skipped[0].Index != 1 {
		t.Fatalf("first skip index = %d, want 1 (the type-mismatch record)", report.Skipped[0].Index)
	}
	if report.Skipped[1].Index != 2 || report.Skipped[1].Reason != "null record" {
		t.Fatalf("second skip = %+v, want the null at index 2", report.Skipped[1])
	}
	for _, sk := range report.Skipped {
		if sk.Offset <= 0 {
			t.Fatalf("skip %+v carries no byte offset", sk)
		}
	}
}

func TestReadJSONLenientEnforcesRecordSizeCap(t *testing.T) {
	huge := `{"id":"big","title":"` + strings.Repeat("あ", 400) + `","description":"x"}`
	input := `[{"id":"ok","title":"t","description":"d"},` + huge + `]`
	recipes, report, err := ReadJSONLenient(strings.NewReader(input), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(recipes) != 1 || recipes[0].ID != "ok" {
		t.Fatalf("kept %v, want only the small record", recipes)
	}
	if len(report.Skipped) != 1 || !strings.Contains(report.Skipped[0].Reason, "cap") {
		t.Fatalf("report = %+v, want one size-cap skip", report)
	}
}

// TestReadJSONLenientStrictFraming: leniency is per-element; broken
// array framing cannot be resynchronized and must fail the decode.
func TestReadJSONLenientStrictFraming(t *testing.T) {
	for name, input := range map[string]string{
		"not-array":    `{"id":"x"}`,
		"syntax-error": `[{"id":"a"}, {]`,
		"truncated":    `[{"id":"a"},`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadJSONLenient(strings.NewReader(input), 0); err == nil {
				t.Fatal("broken framing decoded without error")
			}
		})
	}
}

// TestReadJSONLenientMatchesStrictOnCleanInput: on a well-formed file
// the lenient decoder is a drop-in for ReadJSON.
func TestReadJSONLenientMatchesStrictOnCleanInput(t *testing.T) {
	recipes := []*Recipe{
		{ID: "a", Title: "t1", Description: "d1", Truth: -1},
		{ID: "b", Title: "t2", Description: "d2", Truth: 2,
			Ingredients: []Ingredient{{Name: "寒天", Amount: "2g"}}},
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, recipes); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, report, err := ReadJSONLenient(strings.NewReader(buf.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Skipped) != 0 || report.Decoded != len(strict) {
		t.Fatalf("report = %+v on clean input", report)
	}
	if len(lenient) != len(strict) {
		t.Fatalf("lenient decoded %d, strict %d", len(lenient), len(strict))
	}
	for i := range strict {
		if !reflect.DeepEqual(lenient[i], strict[i]) {
			t.Fatalf("record %d differs: %+v vs %+v", i, lenient[i], strict[i])
		}
	}
}

func TestReadDocsJSONLenient(t *testing.T) {
	input := `[
		{"recipe_id":"a","term_ids":[1,2],"gel":[0.1],"emulsion":[0.2],"truth":-1},
		{"recipe_id":"b","term_ids":"oops","gel":[0.1],"emulsion":[0.2],"truth":0},
		{"recipe_id":"c","term_ids":[3],"gel":[0.3],"emulsion":[0.4],"truth":1}
	]`
	docs, report, err := ReadDocsJSONLenient(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].RecipeID != "a" || docs[1].RecipeID != "c" {
		t.Fatalf("kept %+v, want docs a and c", docs)
	}
	if len(report.Skipped) != 1 || report.Skipped[0].Index != 1 {
		t.Fatalf("report = %+v, want one skip at index 1", report)
	}
}
