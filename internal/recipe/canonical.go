// Canonical content addressing for resolved recipes, shared by the
// request-level annotation cache (internal/serve) and the durable
// ingest log (internal/ingest): both need textual variants of one
// recipe to collapse to one key, and they must agree on what "one
// recipe" means or a cached annotation and a deduplicated WAL record
// would disagree about identity.
package recipe

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"
	"sort"
)

// CanonicalHash content-addresses a resolved recipe. It hashes the
// canonical form the fold-in consumes — resolved gram weights rather
// than the posted amount strings — so textual variants of one recipe
// ("400ml" vs "0.4l" of water) collapse to one key. Ingredients are
// hashed in sorted order because every downstream feature (gel and
// emulsion concentrations, total weight) is order-insensitive; Steps
// and Truth are excluded because no part of the annotation card
// depends on them. The caller must have run Resolve first.
func CanonicalHash(r *Recipe) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		io.WriteString(h, s)
	}
	writeStr(r.ID)
	writeStr(r.Title)
	writeStr(r.Description)
	type ing struct {
		name  string
		grams uint64
	}
	ings := make([]ing, len(r.Ingredients))
	for i := range r.Ingredients {
		ings[i] = ing{r.Ingredients[i].Name, math.Float64bits(r.Ingredients[i].Grams)}
	}
	sort.Slice(ings, func(i, j int) bool {
		if ings[i].name != ings[j].name {
			return ings[i].name < ings[j].name
		}
		return ings[i].grams < ings[j].grams
	})
	for _, in := range ings {
		writeStr(in.name)
		binary.LittleEndian.PutUint64(buf[:], in.grams)
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
