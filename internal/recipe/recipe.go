package recipe

import (
	"fmt"

	"repro/internal/units"
)

// Ingredient is one line of a recipe's ingredient list.
type Ingredient struct {
	Name   string `json:"name"`   // as written by the poster
	Amount string `json:"amount"` // as written, e.g. "大さじ2"

	// Resolved fields, filled by Resolve.
	Grams    float64  `json:"grams,omitempty"`
	Known    bool     `json:"known,omitempty"`
	Category Category `json:"-"`
	Gel      Gel      `json:"-"`
	Emulsion Emulsion `json:"-"`
}

// Recipe is a posted recipe.
type Recipe struct {
	ID          string       `json:"id"`
	Title       string       `json:"title"`
	Description string       `json:"description"` // free text carrying texture terms
	Ingredients []Ingredient `json:"ingredients"`
	Steps       []string     `json:"steps,omitempty"` // cooking instructions, in order

	// Truth carries the generator's hidden topic label for synthetic
	// corpora (−1 when unknown); evaluation-only.
	Truth int `json:"truth,omitempty"`
}

// Resolve parses every ingredient amount and converts it to grams using
// the ingredient registry. Unknown ingredients resolve with Known=false
// and a best-effort gram value (water density, no piece weight); an
// unparseable amount is an error, mirroring the paper's preprocessing
// which drops such recipes upstream.
func (r *Recipe) Resolve() error {
	for i := range r.Ingredients {
		ing := &r.Ingredients[i]
		q, err := units.Parse(ing.Amount)
		if err != nil {
			return fmt.Errorf("recipe %s ingredient %q: %w", r.ID, ing.Name, err)
		}
		info, ok := LookupIngredient(ing.Name)
		profile := units.WaterProfile
		if ok {
			profile = info.Profile
		}
		g, err := q.Grams(profile)
		if err != nil {
			return fmt.Errorf("recipe %s ingredient %q: %w", r.ID, ing.Name, err)
		}
		ing.Grams = g
		ing.Known = ok
		if ok {
			ing.Category = info.Category
			ing.Gel = info.Gel
			ing.Emulsion = info.Emulsion
		} else {
			ing.Category = CategoryOther
		}
	}
	return nil
}

// TotalGrams sums the resolved weights of all ingredients.
func (r *Recipe) TotalGrams() float64 {
	t := 0.0
	for _, ing := range r.Ingredients {
		t += ing.Grams
	}
	return t
}

// GelConcentrations returns the weight ratio of each gel against the
// recipe's total weight.
func (r *Recipe) GelConcentrations() [NumGels]float64 {
	var out [NumGels]float64
	total := r.TotalGrams()
	if total <= 0 {
		return out
	}
	for _, ing := range r.Ingredients {
		if ing.Category == CategoryGel {
			out[ing.Gel] += ing.Grams / total
		}
	}
	return out
}

// EmulsionConcentrations returns the weight ratio of each emulsion
// against the recipe's total weight.
func (r *Recipe) EmulsionConcentrations() [NumEmulsions]float64 {
	var out [NumEmulsions]float64
	total := r.TotalGrams()
	if total <= 0 {
		return out
	}
	for _, ing := range r.Ingredients {
		if ing.Category == CategoryEmulsion {
			out[ing.Emulsion] += ing.Grams / total
		}
	}
	return out
}

// HasGel reports whether any gel ingredient is present with positive
// weight.
func (r *Recipe) HasGel() bool {
	for _, ing := range r.Ingredients {
		if ing.Category == CategoryGel && ing.Grams > 0 {
			return true
		}
	}
	return false
}

// UnrelatedFraction returns the weight share of ingredients unrelated
// to gels and emulsions: solid additions (CategoryOther) and unknown
// ingredients. Water and liquid bases, which dissolve the gel, do not
// count as unrelated.
func (r *Recipe) UnrelatedFraction() float64 {
	total := r.TotalGrams()
	if total <= 0 {
		return 0
	}
	u := 0.0
	for _, ing := range r.Ingredients {
		if ing.Category == CategoryOther {
			u += ing.Grams
		}
	}
	return u / total
}
