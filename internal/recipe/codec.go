package recipe

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON streams recipes as a JSON array.
func WriteJSON(w io.Writer, recipes []*Recipe) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(recipes); err != nil {
		return fmt.Errorf("recipe: encoding: %w", err)
	}
	return nil
}

// ReadJSON reads a JSON array of recipes, as written by WriteJSON.
func ReadJSON(r io.Reader) ([]*Recipe, error) {
	var out []*Recipe
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("recipe: decoding: %w", err)
	}
	return out, nil
}

// WriteDocsJSON streams model-ready docs as a JSON array.
func WriteDocsJSON(w io.Writer, docs []Doc) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(docs); err != nil {
		return fmt.Errorf("recipe: encoding docs: %w", err)
	}
	return nil
}

// ReadDocsJSON reads a JSON array of docs.
func ReadDocsJSON(r io.Reader) ([]Doc, error) {
	var out []Doc
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("recipe: decoding docs: %w", err)
	}
	return out, nil
}
