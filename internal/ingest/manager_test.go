package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// TestManagerWatermarkPersistence: CommitFit writes the watermark into
// the shard manifest, a fresh manager over the same directories reads
// it back, and RecordsSinceFit counts exactly the records past it.
func TestManagerWatermarkPersistence(t *testing.T) {
	walDir, shardDir := t.TempDir(), t.TempDir()
	m, err := OpenManager(ManagerOptions{Dir: walDir, ShardDir: shardDir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Append(testRecipe(t, "wm-"+string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.RecordsSinceFit(); got != 3 {
		t.Fatalf("RecordsSinceFit = %d, want 3", got)
	}
	if err := m.CommitFit(3, 42); err != nil {
		t.Fatal(err)
	}
	if got := m.RecordsSinceFit(); got != 0 {
		t.Fatalf("RecordsSinceFit after commit = %d", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManager(ManagerOptions{Dir: walDir, ShardDir: shardDir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Watermark(); got != 3 {
		t.Fatalf("watermark after reopen = %d, want 3", got)
	}
	if got := pipeline.LoadIngestWatermark(shardDir); got != 3 {
		t.Fatalf("LoadIngestWatermark = %d, want 3", got)
	}
	// Monotone: a stale commit (an older refit finishing late) cannot
	// roll the watermark back.
	if err := m2.CommitFit(2, 41); err != nil {
		t.Fatal(err)
	}
	if got := m2.Watermark(); got != 3 {
		t.Fatalf("stale commit moved the watermark to %d", got)
	}
	if got := pipeline.LoadIngestWatermark(shardDir); got != 3 {
		t.Fatalf("stale commit persisted watermark %d", got)
	}
}

// TestManagerStatusLifecycle: the /statusz ingest block tracks the
// refit state machine and the staleness clock.
func TestManagerStatusLifecycle(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	m, err := OpenManager(ManagerOptions{
		Dir:   t.TempDir(),
		Clock: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st := m.Status()
	if st.RefitState != RefitIdle || st.RecordsSinceFit != 0 || st.StalenessSeconds != 0 {
		t.Fatalf("fresh status = %+v", st)
	}

	if _, err := m.Append(testRecipe(t, "s-1")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	st = m.Status()
	if st.RecordsSinceFit != 1 || st.WAL.LastSeq != 1 {
		t.Fatalf("status after append = %+v", st)
	}
	if st.StalenessSeconds < 29 || st.StalenessSeconds > 31 {
		t.Fatalf("staleness = %vs, want ~30s", st.StalenessSeconds)
	}

	m.beginRefit()
	if st := m.Status(); st.RefitState != RefitRunning {
		t.Fatalf("state = %s, want running", st.RefitState)
	}
	m.failRefit(errors.New("fit exploded"))
	st = m.Status()
	if st.RefitState != RefitFailed || !strings.Contains(st.RefitError, "fit exploded") {
		t.Fatalf("failed status = %+v", st)
	}

	if err := m.CommitFit(1, 7); err != nil {
		t.Fatal(err)
	}
	st = m.Status()
	if st.RefitState != RefitIdle || st.RefitError != "" {
		t.Fatalf("status after commit = %+v", st)
	}
	if st.LastPromoted != 7 || st.LastFitUnix != now.Unix() {
		t.Fatalf("promotion bookkeeping = %+v", st)
	}
	if st.StalenessSeconds != 0 {
		t.Fatalf("staleness after catch-up = %v", st.StalenessSeconds)
	}
}

// TestManagerMetricsExposition: the ingest metric family lands on the
// shared registry with the documented names.
func TestManagerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := OpenManager(ManagerOptions{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Append(testRecipe(t, "m-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(testRecipe(t, "m-1")); err != nil { // duplicate
		t.Fatal(err)
	}
	m.failRefit(errors.New("boom"))
	if err := m.CommitFit(1, 3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ingest_records_total{source="wal"} 1`,
		`ingest_duplicate_records_total 1`,
		`refit_runs_total{outcome="failed"} 1`,
		`refit_runs_total{outcome="ok"} 1`,
		"ingest_wal_bytes",
		"ingest_wal_segments 1",
		"ingest_watermark 1",
		"ingest_records_since_fit 0",
		"model_staleness_seconds 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestManagerCommitFitPersistFailure: the promotion already happened
// when CommitFit runs, so a failed watermark save must not leave
// /statusz stuck at "running" or hide the success — the in-memory
// watermark, promotion bookkeeping, and idle state all advance, the
// error reaches the caller, and the lag is surfaced as the refit
// error.
func TestManagerCommitFitPersistFailure(t *testing.T) {
	badShardDir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(badShardDir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenManager(ManagerOptions{Dir: t.TempDir(), ShardDir: badShardDir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Append(testRecipe(t, "pf-1")); err != nil {
		t.Fatal(err)
	}
	m.beginRefit()
	if err := m.CommitFit(1, 9); err == nil {
		t.Fatal("CommitFit with an unwritable shard dir reported success")
	}
	st := m.Status()
	if st.RefitState != RefitIdle {
		t.Fatalf("refit state after failed save = %q, want idle", st.RefitState)
	}
	if !strings.Contains(st.RefitError, "watermark save") {
		t.Fatalf("refit error %q does not surface the save failure", st.RefitError)
	}
	if st.Watermark != 1 || st.LastPromoted != 9 || st.RecordsSinceFit != 0 {
		t.Fatalf("in-memory commit did not advance: %+v", st)
	}
}

// TestManagerStalenessSurvivesRestart: the last-fit time is persisted
// with the watermark, so a restarted manager measures staleness from
// the last promotion, not from the oldest (already fitted) record in
// the WAL — otherwise one pending record after a restart would trip
// the -refit-age trigger immediately and spuriously.
func TestManagerStalenessSurvivesRestart(t *testing.T) {
	walDir, shardDir := t.TempDir(), t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	m, err := OpenManager(ManagerOptions{Dir: walDir, ShardDir: shardDir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(testRecipe(t, "old")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour)
	if err := m.CommitFit(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(testRecipe(t, "fresh")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	now = now.Add(30 * time.Second)
	m2, err := OpenManager(ManagerOptions{Dir: walDir, ShardDir: shardDir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.RecordsSinceFit(); got != 1 {
		t.Fatalf("RecordsSinceFit after restart = %d, want 1", got)
	}
	// The oldest WAL record is 2h old but already fitted; only the
	// post-fit record is pending, and it is ~30s old.
	if s := m2.staleness().Seconds(); s < 29 || s > 31 {
		t.Fatalf("staleness after restart = %vs, want ~30s", s)
	}
}
