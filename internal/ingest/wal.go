// Package ingest is the durable half of online corpus growth: a
// write-ahead log of accepted recipes, the appended-since-fit
// watermark, and the background re-fit controller that folds the log
// into a new promoted model generation.
//
// The WAL is a directory of append-only segments:
//
//	wal-00000001.seg
//	wal-00000002.seg
//	...
//
// Each segment opens with an envelope in the RHEODUR1 spirit
// (internal/pipeline/container.go):
//
//	offset 0  magic "RHEOWAL1" (8 bytes)
//	offset 8  header length H, uint32 big-endian
//	offset 12 header: H bytes of JSON {"format":1,"segment":N}
//
// followed by length-prefixed, digest-checked records:
//
//	uint32 BE payload length | payload | raw SHA-256 of payload (32 bytes)
//
// where the payload is one JSON walRecord carrying the sequence
// number, the canonical recipe hash, and the recipe document itself.
//
// Durability contract: Append returns only after the record's bytes
// are fsynced (group commit — concurrent appenders share one fsync),
// so an acknowledged record survives kill -9 at any instant. Recovery
// tolerates exactly one kind of damage without data loss: a torn tail
// on the LAST segment (the unacknowledged write that was in flight
// when the process died), which is truncated away. Damage anywhere
// else is corruption and refuses to load — silently dropping
// acknowledged records is the one failure this package exists to
// prevent.
package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/recipe"
)

const (
	walMagic        = "RHEOWAL1"
	walFormat       = 1
	walRecordV      = 1
	maxWALHeaderLen = 1 << 12
	// maxWALRecordLen bounds one record's payload; a recipe document
	// beyond this is garbage, not data (matches the lenient decoder's
	// posture on oversized records).
	maxWALRecordLen = 8 << 20
	// DefaultSegmentBytes is the rotation threshold: large enough that
	// rotation is rare, small enough that recovery scans and torn-tail
	// truncation touch bounded state.
	DefaultSegmentBytes = 4 << 20
)

// Typed failures, aliased to the pipeline's durable-format taxonomy so
// callers use one errors.Is vocabulary for every on-disk artifact.
var (
	// ErrCorrupt marks damage recovery must not repair silently:
	// bit flips or truncation anywhere but the final segment's tail.
	ErrCorrupt = pipeline.ErrCorrupt
	// ErrVersion marks a segment or record written by a newer build.
	ErrVersion = pipeline.ErrVersion
	// ErrTooLarge rejects an append whose encoded record would exceed
	// maxWALRecordLen. Refusing at append time is load-bearing: readFrame
	// treats an over-limit length as corruption, so a larger record, once
	// fsynced and acked, would be unreadable on recovery — an acked write
	// the log could never honor. The caller's fault, never the log's.
	ErrTooLarge = errors.New("ingest: recipe exceeds the WAL record limit")
)

// walSegmentHeader is the JSON between a segment's magic and its
// first record.
type walSegmentHeader struct {
	Format  int `json:"format"`
	Segment int `json:"segment"`
}

// walRecord is one appended recipe, as serialized into a record
// payload.
type walRecord struct {
	// V is the record schema version; records with V beyond this
	// build's walRecordV are refused with ErrVersion.
	V int `json:"v"`
	// Seq is the record's sequence number: dense, monotone, assigned at
	// append. LastSeq - watermark is therefore exactly the count of
	// accepted-but-unfitted records.
	Seq uint64 `json:"seq"`
	// Hash is the hex canonical recipe hash (recipe.CanonicalHash) —
	// the dedup key, shared with the serve-side annotation cache.
	Hash string `json:"hash"`
	// ReceivedUnix is the append wall time, feeding the age-based
	// refit trigger.
	ReceivedUnix int64 `json:"received_unix,omitempty"`
	// Recipe is the resolved recipe document, stored as the exact JSON
	// replayed into re-fits — byte-determinism of the refit stream
	// starts here.
	Recipe json.RawMessage `json:"recipe"`
}

// Ack is Append's receipt.
type Ack struct {
	// Seq is the record's sequence number — the existing record's for a
	// duplicate.
	Seq uint64 `json:"seq"`
	// Duplicate reports that an identical recipe (by canonical hash)
	// was already in the log; nothing new was written.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Stats is a point-in-time WAL summary for /statusz and metrics.
type Stats struct {
	Segments   int    `json:"segments"`
	Bytes      int64  `json:"bytes"`
	Records    uint64 `json:"records"`
	LastSeq    uint64 `json:"last_seq"`
	OldestUnix int64  `json:"oldest_unix,omitempty"`
}

// Options configures Open.
type Options struct {
	// SegmentBytes is the rotation threshold; DefaultSegmentBytes when
	// zero.
	SegmentBytes int64
}

// WAL is the durable append log. All methods are safe for concurrent
// use.
type WAL struct {
	dir     string
	segMax  int64
	written atomic.Int64 // total bytes appended across all segments, headers included

	// mu orders appends and rotation: frame encode+write, the dedup
	// index, and the segment swap decision all happen under it.
	mu      sync.Mutex
	seg     *os.File // current segment (also guarded by syncMu for the swap)
	segNum  int
	segOff  int64 // bytes in the current segment
	nextSeq uint64
	index   map[[sha256.Size]byte]uint64 // canonical hash → seq
	records uint64
	oldest  int64 // ReceivedUnix of the oldest record past the watermark consumers track

	// syncMu orders fsync acknowledgement. Lock order is always
	// mu → syncMu; ack takes syncMu alone. synced is the high-water
	// written offset known durable; a waiter whose record sits below it
	// rides an fsync another appender already paid for.
	syncMu sync.Mutex
	synced int64

	now func() time.Time // test hook
}

// segName formats the fixed-width segment file name, so lexical order
// is numeric order.
func segName(n int) string { return fmt.Sprintf("wal-%08d.seg", n) }

// Open recovers the log in dir (created if absent): every segment is
// scanned, the dedup index and next sequence number rebuilt, and a
// torn tail on the final segment truncated away. Damage anywhere else
// fails with ErrCorrupt/ErrVersion rather than dropping acknowledged
// records.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: wal dir: %w", err)
	}
	w := &WAL{
		dir:    dir,
		segMax: opts.SegmentBytes,
		index:  make(map[[sha256.Size]byte]uint64),
		now:    time.Now,
	}
	if w.segMax <= 0 {
		w.segMax = DefaultSegmentBytes
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, n := range segs {
		last := i == len(segs)-1
		if err := w.recoverSegment(n, last); err != nil {
			return nil, err
		}
	}
	if len(segs) == 0 {
		if err := w.openSegment(1); err != nil {
			return nil, err
		}
	}
	w.synced = w.written.Load()
	return w, nil
}

// listSegments returns the numeric suffixes of the wal-*.seg files in
// dir, sorted. Gaps in the numbering mean a whole segment vanished —
// that is corruption, not history.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: reading wal dir: %w", err)
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &n); err == nil && e.Name() == segName(n) {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	for i, n := range segs {
		if want := segs[0] + i; n != want {
			return nil, fmt.Errorf("ingest: wal segment %s missing (found %s): %w",
				segName(want), segName(n), ErrCorrupt)
		}
	}
	return segs, nil
}

// recoverSegment scans one segment, indexing its records. Only the
// final segment may carry a torn tail (truncated in place) or a torn
// header (the file is recreated empty — a header is fsynced before any
// record, so a torn one proves the segment never held acknowledged
// data).
func (w *WAL) recoverSegment(n int, last bool) error {
	path := filepath.Join(w.dir, segName(n))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	keep, err := w.scanSegment(f, n, last)
	if err != nil {
		f.Close()
		if last && errors.Is(err, errTornHeader) {
			// Crash between segment creation and header fsync: recreate.
			if rerr := os.Remove(path); rerr != nil {
				return fmt.Errorf("ingest: removing torn wal segment: %w", rerr)
			}
			return w.openSegment(n)
		}
		return fmt.Errorf("%s: %w", path, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("ingest: sizing wal segment: %w", err)
	}
	if !last {
		f.Close()
		w.written.Add(size)
		return nil
	}
	if keep < size {
		// Torn tail: drop the partial frame that was in flight when the
		// process died. It was never acknowledged (Append fsyncs before
		// returning), so truncation loses nothing a client was promised.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return fmt.Errorf("ingest: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("ingest: syncing truncated wal segment: %w", err)
		}
		size = keep
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("ingest: seeking wal segment: %w", err)
	}
	w.seg, w.segNum, w.segOff = f, n, size
	w.written.Add(size)
	return nil
}

// errTornHeader marks a final segment whose envelope never finished
// writing; recoverSegment recreates such a segment.
var errTornHeader = errors.New("ingest: wal segment header torn")

// scanSegment validates the envelope and walks every record frame,
// feeding w's index. It returns the byte offset of the last complete
// frame. On the final segment a torn frame ends the scan (tolerated);
// anywhere else it is ErrCorrupt.
func (w *WAL) scanSegment(f *os.File, n int, last bool) (keep int64, err error) {
	r := &countingReader{r: f}
	br := newByteScanner(r)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: wal segment magic missing: %w: %w", ErrCorrupt, err)
	}
	if string(magic[:]) != walMagic {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: not a wal segment: %w", ErrCorrupt)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: wal segment header length missing: %w: %w", ErrCorrupt, err)
	}
	hdrLen := binary.BigEndian.Uint32(lenBuf[:])
	if hdrLen == 0 || hdrLen > maxWALHeaderLen {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: wal segment header length %d implausible: %w", hdrLen, ErrCorrupt)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBytes); err != nil {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: wal segment header truncated: %w: %w", ErrCorrupt, err)
	}
	var hdr walSegmentHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		if last {
			return 0, errTornHeader
		}
		return 0, fmt.Errorf("ingest: wal segment header unparseable: %w: %w", ErrCorrupt, err)
	}
	if hdr.Format != walFormat {
		return 0, fmt.Errorf("ingest: wal segment format %d, this build reads %d: %w",
			hdr.Format, walFormat, ErrVersion)
	}
	if hdr.Segment != n {
		return 0, fmt.Errorf("ingest: wal segment header claims %d, file is %s: %w",
			hdr.Segment, segName(n), ErrCorrupt)
	}
	keep = r.n - int64(br.buffered())
	for {
		rec, ferr := readFrame(br)
		if ferr == io.EOF {
			return keep, nil
		}
		if ferr != nil {
			if last {
				// Torn tail — everything before keep stays.
				return keep, nil
			}
			return keep, ferr
		}
		if rec.V > walRecordV {
			return keep, fmt.Errorf("ingest: wal record v%d, this build reads ≤ v%d: %w",
				rec.V, walRecordV, ErrVersion)
		}
		if rec.Seq != w.nextSeq+1 {
			return keep, fmt.Errorf("ingest: wal record seq %d, want %d: %w",
				rec.Seq, w.nextSeq+1, ErrCorrupt)
		}
		hash, herr := decodeHash(rec.Hash)
		if herr != nil {
			return keep, herr
		}
		w.nextSeq = rec.Seq
		w.records++
		if _, dup := w.index[hash]; !dup {
			w.index[hash] = rec.Seq
		}
		if w.oldest == 0 || (rec.ReceivedUnix != 0 && rec.ReceivedUnix < w.oldest) {
			w.oldest = rec.ReceivedUnix
		}
		keep = r.n - int64(br.buffered())
	}
}

// decodeHash parses a record's hex canonical hash.
func decodeHash(s string) ([sha256.Size]byte, error) {
	var h [sha256.Size]byte
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return h, fmt.Errorf("ingest: wal record hash unparseable: %w", ErrCorrupt)
	}
	copy(h[:], b)
	return h, nil
}

// readFrame reads one length-prefixed, digest-checked record. io.EOF
// means a clean frame boundary; every other failure — short length,
// short payload, short or mismatched digest, unparseable JSON — is a
// torn or flipped frame.
func readFrame(r io.Reader) (*walRecord, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("ingest: wal record length torn: %w: %w", ErrCorrupt, err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxWALRecordLen {
		return nil, fmt.Errorf("ingest: wal record length %d implausible: %w", n, ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("ingest: wal record payload torn: %w: %w", ErrCorrupt, err)
	}
	var digest [sha256.Size]byte
	if _, err := io.ReadFull(r, digest[:]); err != nil {
		return nil, fmt.Errorf("ingest: wal record digest torn: %w: %w", ErrCorrupt, err)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], digest[:]) {
		return nil, fmt.Errorf("ingest: wal record digest mismatch (bit flip or torn write): %w", ErrCorrupt)
	}
	rec := &walRecord{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, fmt.Errorf("ingest: wal record unparseable: %w: %w", ErrCorrupt, err)
	}
	return rec, nil
}

// openSegment creates segment n, writes and fsyncs its header, fsyncs
// the directory so the file name itself is durable, and installs it as
// the current segment. Callers hold mu (or are inside Open, before the
// WAL is shared).
func (w *WAL) openSegment(n int) error {
	hdr, err := json.Marshal(walSegmentHeader{Format: walFormat, Segment: n})
	if err != nil {
		return fmt.Errorf("ingest: encoding wal segment header: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	buf.Write(lenBuf[:])
	buf.Write(hdr)
	path := filepath.Join(w.dir, segName(n))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: creating wal segment: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("ingest: writing wal segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: syncing wal segment header: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.syncMu.Lock()
	w.seg, w.segNum, w.segOff = f, n, int64(buf.Len())
	w.written.Add(int64(buf.Len()))
	w.synced = w.written.Load()
	w.syncMu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: opening wal dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ingest: syncing wal dir: %w", err)
	}
	return nil
}

// Append durably logs rec (which must be Resolved) and returns its
// sequence number. The record's bytes are fsynced before Append
// returns — the acknowledgement IS the durability promise. A recipe
// whose canonical hash is already in the log writes nothing and
// returns the original sequence with Duplicate set; the duplicate ack
// still waits for that record's durability, so a crashed-and-retried
// client never receives an ack for bytes that are not yet on disk.
func (w *WAL) Append(rec *recipe.Recipe) (Ack, error) {
	hash := recipe.CanonicalHash(rec)
	doc, err := json.Marshal(rec)
	if err != nil {
		return Ack{}, fmt.Errorf("ingest: encoding recipe: %w", err)
	}

	w.mu.Lock()
	if seq, dup := w.index[hash]; dup {
		target := w.written.Load()
		w.mu.Unlock()
		if err := w.ack(target); err != nil {
			return Ack{}, err
		}
		return Ack{Seq: seq, Duplicate: true}, nil
	}
	seq := w.nextSeq + 1
	nowUnix := w.now().Unix()
	payload, err := json.Marshal(walRecord{
		V: walRecordV, Seq: seq,
		Hash:         hex.EncodeToString(hash[:]),
		ReceivedUnix: nowUnix,
		Recipe:       doc,
	})
	if err != nil {
		w.mu.Unlock()
		return Ack{}, fmt.Errorf("ingest: encoding wal record: %w", err)
	}
	if len(payload) > maxWALRecordLen {
		w.mu.Unlock()
		return Ack{}, fmt.Errorf("%w: record is %d bytes, limit %d", ErrTooLarge, len(payload), maxWALRecordLen)
	}
	frame := make([]byte, 0, 4+len(payload)+sha256.Size)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	frame = append(frame, lenBuf[:]...)
	frame = append(frame, payload...)
	sum := sha256.Sum256(payload)
	frame = append(frame, sum[:]...)
	// WriteAt at the tracked offset, never Write at the file cursor: a
	// partial write (ENOSPC mid-frame) leaves garbage past segOff, but
	// because no state advances, the next append re-targets the same
	// offset and overwrites it — a failed write can never shift where
	// later acknowledged frames land. Any garbage left beyond the final
	// good frame is dropped by rotation/Close truncation or, after a
	// crash, by torn-tail recovery.
	if _, err := w.seg.WriteAt(frame, w.segOff); err != nil {
		w.mu.Unlock()
		return Ack{}, fmt.Errorf("ingest: appending wal record: %w", err)
	}
	w.nextSeq = seq
	w.index[hash] = seq
	w.records++
	if w.oldest == 0 {
		w.oldest = nowUnix
	}
	w.segOff += int64(len(frame))
	target := w.written.Add(int64(len(frame)))
	var rotateErr error
	if w.segOff >= w.segMax {
		rotateErr = w.rotateLocked()
	}
	w.mu.Unlock()
	if rotateErr != nil {
		return Ack{}, rotateErr
	}
	if err := w.ack(target); err != nil {
		return Ack{}, err
	}
	return Ack{Seq: seq}, nil
}

// ack blocks until every byte up to target is fsynced. Group commit:
// the first waiter through syncMu pays one fsync that covers every
// record written before it started; later waiters see their offset
// already below synced and return free.
func (w *WAL) ack(target int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= target {
		return nil
	}
	// Bytes written after this load may or may not ride along; claiming
	// only what was written before the fsync began keeps synced honest.
	durable := w.written.Load()
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("ingest: syncing wal segment: %w", err)
	}
	w.synced = durable
	return nil
}

// rotateLocked seals the current segment and opens the next. Called
// with mu held. The old segment is truncated to its last acknowledged
// frame (dropping garbage a failed WriteAt may have left past segOff —
// a sealed segment must scan clean end to end, it gets no torn-tail
// tolerance) and fsynced before the new one exists, so a crash
// mid-rotation leaves the sealed segment complete and at worst a
// headerless new file — which recovery recreates.
func (w *WAL) rotateLocked() error {
	if err := w.seg.Truncate(w.segOff); err != nil {
		return fmt.Errorf("ingest: trimming wal segment before rotation: %w", err)
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("ingest: syncing wal segment before rotation: %w", err)
	}
	w.syncMu.Lock()
	// Everything written so far lives in the just-synced segment.
	w.synced = w.written.Load()
	w.syncMu.Unlock()
	old := w.seg
	if err := w.openSegment(w.segNum + 1); err != nil {
		return err
	}
	if err := old.Close(); err != nil {
		return fmt.Errorf("ingest: closing sealed wal segment: %w", err)
	}
	return nil
}

// LastSeq is the highest acknowledged sequence number.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Contains reports whether a recipe with this canonical hash is
// already in the log, and its sequence.
func (w *WAL) Contains(hash [sha256.Size]byte) (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq, ok := w.index[hash]
	return seq, ok
}

// Stats summarizes the log.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Segments:   w.segNum,
		Bytes:      w.written.Load(),
		Records:    w.records,
		LastSeq:    w.nextSeq,
		OldestUnix: w.oldest,
	}
}

// Close trims the current segment to its last acknowledged frame,
// fsyncs, and closes it. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	err := w.seg.Truncate(w.segOff)
	if serr := w.seg.Sync(); err == nil {
		err = serr
	}
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg = nil
	return err
}

// Replay streams every record with Seq ≤ upTo (0 means all at scan
// time) through fn, in sequence order, deduplicated by canonical hash
// — first occurrence wins, matching the append-side index. It reads
// the segment files directly, so it works on a live directory (a
// concurrent appender only adds frames past upTo, which replay never
// reaches) and on a cold one with no WAL open. At-least-once delivery
// with dedup is the contract re-fits build on.
func Replay(dir string, upTo uint64, fn func(seq uint64, doc json.RawMessage) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	seen := make(map[[sha256.Size]byte]bool)
	var next uint64
	for i, n := range segs {
		last := i == len(segs)-1
		stop, err := replaySegment(dir, n, last, upTo, &next, seen, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// replaySegment walks one segment for Replay. stop reports that upTo
// was passed and the walk is complete.
func replaySegment(dir string, n int, last bool, upTo uint64, next *uint64,
	seen map[[sha256.Size]byte]bool, fn func(uint64, json.RawMessage) error) (stop bool, err error) {
	path := filepath.Join(dir, segName(n))
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	defer f.Close()
	br := newByteScanner(&countingReader{r: f})
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != walMagic {
		if last {
			return true, nil // torn header: no acknowledged data here
		}
		return false, fmt.Errorf("%s: wal segment magic missing: %w", path, ErrCorrupt)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		if last {
			return true, nil
		}
		return false, fmt.Errorf("%s: wal segment header length missing: %w", path, ErrCorrupt)
	}
	hdrLen := binary.BigEndian.Uint32(lenBuf[:])
	if hdrLen == 0 || hdrLen > maxWALHeaderLen {
		if last {
			return true, nil
		}
		return false, fmt.Errorf("%s: wal segment header length implausible: %w", path, ErrCorrupt)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBytes); err != nil {
		if last {
			return true, nil
		}
		return false, fmt.Errorf("%s: wal segment header truncated: %w", path, ErrCorrupt)
	}
	var hdr walSegmentHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		if last {
			return true, nil
		}
		return false, fmt.Errorf("%s: wal segment header unparseable: %w", path, ErrCorrupt)
	}
	if hdr.Format != walFormat {
		return false, fmt.Errorf("%s: wal segment format %d: %w", path, hdr.Format, ErrVersion)
	}
	for {
		rec, ferr := readFrame(br)
		if ferr == io.EOF {
			return false, nil
		}
		if ferr != nil {
			if last {
				return true, nil // torn tail past the acknowledged prefix
			}
			return false, fmt.Errorf("%s: %w", path, ferr)
		}
		if rec.V > walRecordV {
			return false, fmt.Errorf("%s: wal record v%d: %w", path, rec.V, ErrVersion)
		}
		if rec.Seq != *next+1 {
			return false, fmt.Errorf("%s: wal record seq %d, want %d: %w", path, rec.Seq, *next+1, ErrCorrupt)
		}
		*next = rec.Seq
		if upTo != 0 && rec.Seq > upTo {
			return true, nil
		}
		hash, herr := decodeHash(rec.Hash)
		if herr != nil {
			return false, fmt.Errorf("%s: %w", path, herr)
		}
		if seen[hash] {
			continue
		}
		seen[hash] = true
		if err := fn(rec.Seq, rec.Recipe); err != nil {
			return false, err
		}
	}
}

// countingReader tracks bytes consumed from the underlying reader, so
// the scanner can convert "last good frame" into a truncation offset.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// byteScanner is a small buffered reader that exposes how many bytes
// it holds ahead of the consumer — countingReader.n minus buffered()
// is the consumer's true offset. bufio.Reader would work but its
// Buffered() contract plus ReadFull interplay is exactly these few
// lines anyway.
type byteScanner struct {
	r   io.Reader
	buf []byte
	off int
	end int
}

func newByteScanner(r io.Reader) *byteScanner {
	return &byteScanner{r: r, buf: make([]byte, 64<<10)}
}

func (b *byteScanner) buffered() int { return b.end - b.off }

func (b *byteScanner) Read(p []byte) (int, error) {
	if b.off == b.end {
		n, err := b.r.Read(b.buf)
		if n == 0 {
			return 0, err
		}
		b.off, b.end = 0, n
	}
	n := copy(p, b.buf[b.off:b.end])
	b.off += n
	return n, nil
}
