package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/recipe"
)

// TestWALChaosChild is the kill -9 victim: re-executed by the chaos
// test below, it appends recipes as fast as it can, printing one
// "ACK <seq>" line after each durable acknowledgement. It is inert in
// a normal test run.
func TestWALChaosChild(t *testing.T) {
	dir := os.Getenv("INGEST_CHAOS_DIR")
	if dir == "" {
		t.Skip("chaos child: only runs re-executed by TestWALChaosKillDuringAppend")
	}
	// A tiny rotation threshold makes the kill land mid-rotation as
	// often as mid-append, covering both crash surfaces in one loop.
	segBytes, _ := strconv.ParseInt(os.Getenv("INGEST_CHAOS_SEGBYTES"), 10, 64)
	w, err := Open(dir, Options{SegmentBytes: segBytes})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		t.Fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	nonce := os.Getenv("INGEST_CHAOS_NONCE")
	for i := 0; ; i++ {
		r := &recipe.Recipe{
			ID:    fmt.Sprintf("chaos-%s-%d", nonce, i),
			Title: "ゼリー chaos",
			Ingredients: []recipe.Ingredient{
				{Name: "ゼラチン", Amount: "5g"},
				{Name: "水", Amount: "400ml"},
			},
		}
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
		ack, err := w.Append(r)
		if err != nil {
			fmt.Printf("ERR %v\n", err)
			t.Fatal(err)
		}
		// The flushed line is the client-visible acknowledgement: the
		// parent only counts acks it actually received, exactly like a
		// client that never saw the response of an in-flight request.
		fmt.Fprintf(out, "ACK %d\n", ack.Seq)
		out.Flush()
	}
}

// TestWALChaosKillDuringAppend: kill -9 the appender at arbitrary
// instants — mid-append, mid-fsync, mid-rotation — across several
// rounds in one directory. After every kill the log must recover with
// every parent-observed acknowledgement intact, dense sequence
// numbers, and recovery must be idempotent (a second open changes no
// bytes).
func TestWALChaosKillDuringAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos suite skipped in -short")
	}
	dir := t.TempDir()
	var maxAcked uint64
	for round := 0; round < 5; round++ {
		maxAcked = runChaosRound(t, dir, round, maxAcked)
	}
	if maxAcked == 0 {
		t.Fatal("no acknowledgements observed across any round; the suite verified nothing")
	}
	t.Logf("verified %d acknowledged records across 5 kill -9 rounds", maxAcked)
}

// runChaosRound starts the child, kills it after a short random-ish
// delay, and verifies recovery. Returns the highest acknowledged
// sequence observed so far.
func runChaosRound(t *testing.T, dir string, round int, prevAcked uint64) uint64 {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"INGEST_CHAOS_DIR="+dir,
		"INGEST_CHAOS_SEGBYTES=256",
		fmt.Sprintf("INGEST_CHAOS_NONCE=%d", round),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acks until the kill lands; vary the delay per round so the
	// process dies at different points of the append/rotate cycle.
	delay := time.Duration(20+17*round) * time.Millisecond
	killed := make(chan struct{})
	go func() {
		time.Sleep(delay)
		cmd.Process.Kill() // SIGKILL: no handlers, no flush, no goodbye
		close(killed)
	}()

	maxAcked := prevAcked
	var acked []uint64
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("round %d: child error before kill: %s\n%s", round, line, stderr.String())
		}
		if !strings.HasPrefix(line, "ACK ") {
			continue // test framework chatter
		}
		seq, err := strconv.ParseUint(line[4:], 10, 64)
		if err != nil {
			t.Fatalf("round %d: bad ack line %q", round, line)
		}
		acked = append(acked, seq)
		if seq > maxAcked {
			maxAcked = seq
		}
	}
	if err := sc.Err(); err != nil && err != io.ErrUnexpectedEOF {
		t.Fatalf("round %d: reading acks: %v", round, err)
	}
	<-killed
	cmd.Wait() // expected to be the kill signal

	// Recovery: every acknowledged record must be present.
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("round %d: recovery after kill -9 failed: %v", round, err)
	}
	last := w.LastSeq()
	w.Close()
	if last < maxAcked {
		t.Fatalf("round %d: recovered LastSeq %d < acknowledged %d — acked-record loss", round, last, maxAcked)
	}

	replayed := make(map[uint64]bool)
	if err := Replay(dir, 0, func(seq uint64, doc json.RawMessage) error {
		replayed[seq] = true
		return nil
	}); err != nil {
		t.Fatalf("round %d: replay after recovery: %v", round, err)
	}
	for _, seq := range acked {
		if !replayed[seq] {
			t.Fatalf("round %d: acknowledged seq %d missing from replay", round, seq)
		}
	}
	// Sequence space is dense: unique recipes per round mean no dedup
	// collapses, so replay must hold exactly 1..last.
	if uint64(len(replayed)) != last {
		t.Fatalf("round %d: replayed %d unique seqs, want %d", round, len(replayed), last)
	}

	// Idempotent recovery: a second open finds a fully healed log and
	// leaves its bytes alone.
	before := snapshotDir(t, dir)
	w2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("round %d: second recovery failed: %v", round, err)
	}
	w2.Close()
	if got := snapshotDir(t, dir); !bytes.Equal(got, before) {
		t.Fatalf("round %d: recovery was not idempotent", round)
	}
	return maxAcked
}
