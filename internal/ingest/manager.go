// Manager: the serving-side face of online ingestion. It owns the WAL,
// tracks the appended-since-fit watermark (persisted in the shard
// manifest, see pipeline.SaveIngestWatermark), and publishes the
// metrics and status the satellite endpoints expose.
package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/recipe"
)

// Refit states, as reported in /statusz.
const (
	RefitIdle    = "idle"
	RefitRunning = "running"
	RefitFailed  = "failed"
)

// ManagerOptions configures OpenManager.
type ManagerOptions struct {
	// Dir is the WAL directory. Required.
	Dir string
	// ShardDir is where the shard manifest carrying the ingest
	// watermark lives — usually the same -shard-dir the re-fit uses.
	// Empty keeps the watermark in memory only (tests; ephemeral
	// deployments that refit from scratch anyway).
	ShardDir string
	// SegmentBytes is the WAL rotation threshold.
	SegmentBytes int64
	// Metrics registers the ingest metric family when non-nil.
	Metrics *obs.Registry
	// Clock is a test hook; time.Now when nil.
	Clock func() time.Time
}

// Status is the /statusz ingest block.
type Status struct {
	WAL Stats `json:"wal"`
	// Watermark is the highest sequence the promoted model has learned
	// from.
	Watermark uint64 `json:"watermark"`
	// RecordsSinceFit is LastSeq − Watermark: accepted records the
	// serving model annotates only via fold-in.
	RecordsSinceFit uint64 `json:"records_since_fit"`
	// RefitState is RefitIdle, RefitRunning, or RefitFailed.
	RefitState string `json:"refit_state"`
	// RefitError is the last re-fit failure, cleared by the next
	// success.
	RefitError string `json:"refit_error,omitempty"`
	// LastPromoted is the generation ID the last successful re-fit
	// promoted; 0 before the first.
	LastPromoted int64 `json:"last_promoted,omitempty"`
	// LastFitUnix is when that promotion happened.
	LastFitUnix int64 `json:"last_fit_unix,omitempty"`
	// StalenessSeconds is how long the oldest unfitted accepted record
	// has been waiting; 0 when the model is fully caught up.
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// Manager wires the WAL to the watermark and the metric family. All
// methods are safe for concurrent use.
type Manager struct {
	wal      *WAL
	dir      string
	shardDir string
	clock    func() time.Time

	watermark    atomic.Uint64
	lastPromoted atomic.Int64
	lastFitUnix  atomic.Int64

	mu         sync.Mutex
	refitState string
	refitErr   string

	appended *obs.Counter
	dups     *obs.Counter
	refitOK  *obs.Counter
	refitBad *obs.Counter
}

// OpenManager recovers the WAL and the persisted watermark.
func OpenManager(opts ManagerOptions) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("ingest: ManagerOptions.Dir required")
	}
	w, err := Open(opts.Dir, Options{SegmentBytes: opts.SegmentBytes})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		wal:        w,
		dir:        opts.Dir,
		shardDir:   opts.ShardDir,
		clock:      opts.Clock,
		refitState: RefitIdle,
	}
	if m.clock == nil {
		m.clock = time.Now
	}
	// One clock for both halves: record timestamps (the WAL's) and the
	// staleness arithmetic (the manager's) must agree under test clocks.
	w.now = m.clock
	if opts.ShardDir != "" {
		// Both halves of the persisted state matter: the watermark sizes
		// the refit trigger, and the last-fit time floors the staleness
		// clock — without it, a restart with any pending record would
		// measure staleness from the oldest record in the whole WAL
		// (already fitted, possibly days old) and fire the age trigger
		// spuriously.
		seq, fitUnix := pipeline.LoadIngestState(opts.ShardDir)
		m.watermark.Store(seq)
		m.lastFitUnix.Store(fitUnix)
	}
	if reg := opts.Metrics; reg != nil {
		// The streaming fit pass owns the unlabeled ingest_records_total
		// series; the WAL's arrivals are a distinct source.
		m.appended = reg.Counter("ingest_records_total",
			"Recipes durably appended to the ingest WAL.", obs.Labels{"source": "wal"})
		m.dups = reg.Counter("ingest_duplicate_records_total",
			"Ingest submissions deduplicated against the WAL by canonical hash.", nil)
		m.refitOK = reg.Counter("refit_runs_total",
			"Background re-fit attempts by outcome.", obs.Labels{"outcome": "ok"})
		m.refitBad = reg.Counter("refit_runs_total",
			"Background re-fit attempts by outcome.", obs.Labels{"outcome": "failed"})
		reg.GaugeFunc("ingest_wal_bytes", "Total bytes in the ingest WAL.", nil,
			func() float64 { return float64(m.wal.Stats().Bytes) })
		reg.GaugeFunc("ingest_wal_segments", "Segment files in the ingest WAL.", nil,
			func() float64 { return float64(m.wal.Stats().Segments) })
		reg.GaugeFunc("ingest_watermark", "Highest WAL sequence reflected in the fitted model.", nil,
			func() float64 { return float64(m.watermark.Load()) })
		reg.GaugeFunc("ingest_records_since_fit",
			"Accepted records the serving model has not been re-fitted on.", nil,
			func() float64 { return float64(m.RecordsSinceFit()) })
		reg.GaugeFunc("model_staleness_seconds",
			"Age of the oldest accepted record not yet covered by a re-fit.", nil,
			func() float64 { return m.staleness().Seconds() })
	}
	return m, nil
}

// Dir is the WAL directory (the refit controller replays it).
func (m *Manager) Dir() string { return m.dir }

// WAL exposes the underlying log.
func (m *Manager) WAL() *WAL { return m.wal }

// Append durably logs rec (already Resolved) and returns the ack.
func (m *Manager) Append(rec *recipe.Recipe) (Ack, error) {
	ack, err := m.wal.Append(rec)
	if err != nil {
		return ack, err
	}
	switch {
	case ack.Duplicate:
		if m.dups != nil {
			m.dups.Inc()
		}
	default:
		if m.appended != nil {
			m.appended.Inc()
		}
	}
	return ack, nil
}

// Watermark is the highest sequence the fitted model covers.
func (m *Manager) Watermark() uint64 { return m.watermark.Load() }

// RecordsSinceFit counts accepted records past the watermark. Sequence
// numbers are dense (duplicates allocate none), so the subtraction is
// an exact count.
func (m *Manager) RecordsSinceFit() uint64 {
	last := m.wal.LastSeq()
	wm := m.watermark.Load()
	if last <= wm {
		return 0
	}
	return last - wm
}

// staleness is how long re-fit work has been pending: zero when caught
// up, otherwise the age of the oldest record plausibly past the
// watermark (bounded below by the last promotion time — records fitted
// then cannot be stale).
func (m *Manager) staleness() time.Duration {
	if m.RecordsSinceFit() == 0 {
		return 0
	}
	since := m.wal.Stats().OldestUnix
	if fit := m.lastFitUnix.Load(); fit > since {
		since = fit
	}
	if since == 0 {
		return 0
	}
	d := m.clock().Sub(time.Unix(since, 0))
	if d < 0 {
		return 0
	}
	return d
}

// beginRefit flips the status to running. Reported, not enforced — the
// Refitter serializes its own runs.
func (m *Manager) beginRefit() {
	m.mu.Lock()
	m.refitState = RefitRunning
	m.mu.Unlock()
}

// failRefit records a re-fit failure; serving continues on the old
// generation and /statusz shows the degraded state.
func (m *Manager) failRefit(err error) {
	if m.refitBad != nil {
		m.refitBad.Inc()
	}
	m.mu.Lock()
	m.refitState = RefitFailed
	m.refitErr = err.Error()
	m.mu.Unlock()
}

// CommitFit advances the watermark to seq and records the promoted
// generation, persisting both when a shard directory is configured.
// The watermark write is the LAST step of a re-fit — a crash before it
// re-runs an idempotent fit+publish+promote chain, never loses
// records. A failed persist does not undo the commit: the promotion
// already happened, so the in-memory watermark, counters, and status
// all advance regardless (only the refit error notes the lag), and the
// save error is returned for the caller to log. The next successful
// save heals the on-disk copy.
func (m *Manager) CommitFit(seq uint64, generation int64) error {
	now := m.clock().Unix()
	var saveErr error
	if m.shardDir != "" {
		saveErr = pipeline.SaveIngestWatermark(m.shardDir, seq, now)
	}
	if wm := m.watermark.Load(); seq > wm {
		m.watermark.Store(seq)
	}
	m.lastPromoted.Store(generation)
	m.lastFitUnix.Store(now)
	if m.refitOK != nil {
		m.refitOK.Inc()
	}
	m.mu.Lock()
	m.refitState = RefitIdle
	if saveErr != nil {
		m.refitErr = fmt.Sprintf("promotion of generation %d succeeded but the watermark save lagged: %v", generation, saveErr)
	} else {
		m.refitErr = ""
	}
	m.mu.Unlock()
	return saveErr
}

// Status snapshots the ingest block for /statusz.
func (m *Manager) Status() Status {
	m.mu.Lock()
	state, refitErr := m.refitState, m.refitErr
	m.mu.Unlock()
	return Status{
		WAL:              m.wal.Stats(),
		Watermark:        m.watermark.Load(),
		RecordsSinceFit:  m.RecordsSinceFit(),
		RefitState:       state,
		RefitError:       refitErr,
		LastPromoted:     m.lastPromoted.Load(),
		LastFitUnix:      m.lastFitUnix.Load(),
		StalenessSeconds: m.staleness().Seconds(),
	}
}

// Close closes the WAL.
func (m *Manager) Close() error { return m.wal.Close() }
