// CombinedSource: the refit corpus — the frozen base stream with the
// WAL's accepted recipes appended as JSONL.
package ingest

import (
	"encoding/json"
	"io"

	"repro/internal/pipeline"
)

// CombinedSource builds the reopenable stream a re-fit consumes: the
// base corpus (JSONL — a FileSource or GeneratedSource; may be nil for
// a WAL-only corpus) followed by every WAL record with Seq ≤ upTo,
// deduplicated by canonical hash, one JSON document per line.
//
// Determinism is the point: RunStream reads its source twice, and a
// resumed re-fit must see byte-identical input, so the WAL half
// replays records in sequence order up to a frozen snapshot — appends
// racing the re-fit land past upTo and wait for the next one.
func CombinedSource(base pipeline.StreamSource, dir string, upTo uint64) pipeline.StreamSource {
	return func() (io.ReadCloser, error) {
		var readers []io.Reader
		var closers []io.Closer
		if base != nil {
			r, err := base()
			if err != nil {
				return nil, err
			}
			readers = append(readers, r)
			closers = append(closers, r)
		}
		pr, pw := io.Pipe()
		go func() {
			err := Replay(dir, upTo, func(seq uint64, doc json.RawMessage) error {
				if _, werr := pw.Write(doc); werr != nil {
					return werr
				}
				_, werr := pw.Write([]byte("\n"))
				return werr
			})
			pw.CloseWithError(err)
		}()
		// The separating newline guards against a base stream whose last
		// line has no terminator; the lenient decoder skips blank lines,
		// so a doubled newline costs nothing.
		readers = append(readers, io.MultiReader(newlineReader(), pr))
		closers = append(closers, pr)
		return &multiReadCloser{r: io.MultiReader(readers...), closers: closers}, nil
	}
}

func newlineReader() io.Reader {
	return &byteOnce{b: '\n'}
}

// byteOnce yields a single byte then EOF.
type byteOnce struct {
	b    byte
	done bool
}

func (o *byteOnce) Read(p []byte) (int, error) {
	if o.done || len(p) == 0 {
		return 0, io.EOF
	}
	o.done = true
	p[0] = o.b
	return 1, nil
}

// multiReadCloser closes every constituent when the concatenated
// stream is closed — including the replay pipe, which unblocks and
// terminates its goroutine.
type multiReadCloser struct {
	r       io.Reader
	closers []io.Closer
}

func (m *multiReadCloser) Read(p []byte) (int, error) { return m.r.Read(p) }

func (m *multiReadCloser) Close() error {
	var first error
	for _, c := range m.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
