// The background re-fit controller: watches the appended-since-fit
// watermark, and when enough records (or enough age) accumulate,
// streams base corpus + WAL through the pipeline, publishes the merged
// bundle to the registry, promotes it, and advances the watermark —
// each step idempotent, so a crash at any point re-converges on the
// next run instead of losing or double-counting records.
package ingest

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pipeline"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// RefitOptions configures a Refitter.
type RefitOptions struct {
	// Manager supplies the WAL, watermark, and status/metrics plumbing.
	// Required.
	Manager *Manager
	// Base is the frozen corpus the WAL grows on top of (JSONL — a
	// FileSource or GeneratedSource). Nil fits from the WAL alone.
	Base pipeline.StreamSource
	// Pipeline is the fit configuration template. Supervise/ShardCount/
	// ShardDir flow through unchanged, so a sharded, supervised,
	// resumable re-fit is just the flags the batch path already takes.
	Pipeline pipeline.Options
	// Registry receives the merged bundle. Required.
	Registry *storage.Registry
	// MinRecords triggers a re-fit once this many accepted records sit
	// past the watermark. Default 1000.
	MinRecords uint64
	// MaxAge triggers a re-fit once the oldest unfitted record is this
	// old, regardless of count. Zero disables the age trigger.
	MaxAge time.Duration
	// Interval is the trigger poll cadence in Run. Default 15s.
	Interval time.Duration
	// Backoff spaces retries after a failed re-fit, so a persistently
	// failing fit cannot hot-loop. Default: 4 attempts from 30s.
	Backoff resilience.Backoff
	// Note annotates published generations ("online refit").
	Note string
	// OnPromoted runs after a successful promotion with the fit output
	// and the promoted generation — the local serving process uses it
	// to swap immediately instead of waiting for its follower poll.
	OnPromoted func(*pipeline.Output, storage.Generation)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Refitter runs the watermark-triggered re-fit loop.
type Refitter struct {
	opts  RefitOptions
	fails int
}

// NewRefitter validates opts.
func NewRefitter(opts RefitOptions) (*Refitter, error) {
	if opts.Manager == nil {
		return nil, fmt.Errorf("ingest: RefitOptions.Manager required")
	}
	if opts.Registry == nil {
		return nil, fmt.Errorf("ingest: RefitOptions.Registry required")
	}
	if opts.MinRecords == 0 {
		opts.MinRecords = 1000
	}
	if opts.Interval <= 0 {
		opts.Interval = 15 * time.Second
	}
	if opts.Backoff.Attempts == 0 {
		opts.Backoff = resilience.Backoff{Attempts: 4, Base: 30 * time.Second, Max: 5 * time.Minute}
	}
	if opts.Note == "" {
		opts.Note = "online refit"
	}
	return &Refitter{opts: opts}, nil
}

func (r *Refitter) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Due reports whether the trigger condition holds.
func (r *Refitter) Due() bool {
	m := r.opts.Manager
	pending := m.RecordsSinceFit()
	if pending == 0 {
		return false
	}
	if pending >= r.opts.MinRecords {
		return true
	}
	return r.opts.MaxAge > 0 && m.staleness() >= r.opts.MaxAge
}

// Run polls the trigger until ctx ends. One re-fit at a time; failures
// back off per opts.Backoff while serving continues on the promoted
// generation.
func (r *Refitter) Run(ctx context.Context) {
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !r.Due() {
			continue
		}
		if _, _, err := r.RefitOnce(ctx); err != nil {
			r.logf("ingest: refit failed (attempt %d): %v", r.fails, err)
			if !sleepCtx(ctx, r.backoffDelay()) {
				return
			}
		}
	}
}

// backoffDelay picks the post-failure pause from the backoff schedule,
// saturating at its last (largest) delay.
func (r *Refitter) backoffDelay() time.Duration {
	delays := r.opts.Backoff.Delays()
	if len(delays) == 0 {
		return r.opts.Interval
	}
	i := r.fails - 1
	if i < 0 {
		i = 0
	}
	if i >= len(delays) {
		i = len(delays) - 1
	}
	return delays[i]
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// RefitOnce executes one full re-fit cycle against a frozen WAL
// snapshot: fit (base + WAL ≤ snapshot), publish, promote, advance
// watermark. Every step is idempotent — the stream source replays
// identical bytes, the fit is deterministic (resumable via ShardDir),
// Publish content-addresses, Promote no-ops on re-promotion — so a
// crash between any two steps makes the next run converge on the same
// generation rather than fork history. Returns the promoted
// generation and whether a re-fit actually ran.
func (r *Refitter) RefitOnce(ctx context.Context) (storage.Generation, bool, error) {
	m := r.opts.Manager
	snapshot := m.wal.LastSeq()
	if snapshot <= m.Watermark() {
		return storage.Generation{}, false, nil
	}
	m.beginRefit()
	gen, err := r.refitTo(ctx, snapshot)
	if err != nil {
		r.fails++
		m.failRefit(err)
		return storage.Generation{}, true, err
	}
	r.fails = 0
	if err := m.CommitFit(snapshot, gen.ID); err != nil {
		// The model IS promoted; only the watermark lagged. The next
		// cycle refits a superset and re-converges — log, don't fail the
		// promotion that already happened.
		r.logf("ingest: watermark save failed after promoting generation %d: %v", gen.ID, err)
	}
	r.logf("ingest: refit promoted generation %d (watermark %d)", gen.ID, snapshot)
	return gen, true, nil
}

// refitTo runs fit → publish → promote for one snapshot.
func (r *Refitter) refitTo(ctx context.Context, snapshot uint64) (storage.Generation, error) {
	src := CombinedSource(r.opts.Base, r.opts.Manager.Dir(), snapshot)
	out, err := pipeline.RunStream(src, r.opts.Pipeline)
	if err != nil {
		return storage.Generation{}, fmt.Errorf("refit fit: %w", err)
	}
	blob, digest, err := out.EncodeBundle()
	if err != nil {
		return storage.Generation{}, fmt.Errorf("refit encode: %w", err)
	}
	gen, err := r.opts.Registry.Publish(ctx, blob, fmt.Sprintf("%s (seq %d)", r.opts.Note, snapshot))
	if err != nil {
		return storage.Generation{}, fmt.Errorf("refit publish: %w", err)
	}
	if err := r.opts.Registry.Promote(ctx, gen.ID); err != nil {
		return storage.Generation{}, fmt.Errorf("refit promote: %w", err)
	}
	r.logf("ingest: published bundle %.12s… as generation %d", digest, gen.ID)
	if r.opts.OnPromoted != nil {
		r.opts.OnPromoted(out, gen)
	}
	return gen, nil
}
