package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/recipe"
)

// testRecipe builds a resolved, ingestible recipe whose canonical hash
// is unique per id.
func testRecipe(t testing.TB, id string) *recipe.Recipe {
	t.Helper()
	r := &recipe.Recipe{
		ID:          id,
		Title:       "ゼリー " + id,
		Description: "ぷるぷるです",
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "水", Amount: "400ml"},
		},
	}
	if err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	return r
}

// appendN appends n fresh recipes with the given id prefix, asserting
// dense sequence numbers starting from the WAL's current tail.
func appendN(t *testing.T, w *WAL, prefix string, n int) {
	t.Helper()
	base := w.LastSeq()
	for i := 0; i < n; i++ {
		ack, err := w.Append(testRecipe(t, fmt.Sprintf("%s-%d", prefix, i)))
		if err != nil {
			t.Fatal(err)
		}
		if ack.Duplicate || ack.Seq != base+uint64(i)+1 {
			t.Fatalf("append %d: ack %+v, want seq %d", i, ack, base+uint64(i)+1)
		}
	}
}

// replaySeqs replays the directory and returns the delivered sequence
// numbers alongside the decoded recipe IDs.
func replaySeqs(t *testing.T, dir string, upTo uint64) (seqs []uint64, ids []string) {
	t.Helper()
	err := Replay(dir, upTo, func(seq uint64, doc json.RawMessage) error {
		var r recipe.Recipe
		if err := json.Unmarshal(doc, &r); err != nil {
			return err
		}
		seqs = append(seqs, seq)
		ids = append(ids, r.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, ids
}

// TestWALAppendReopenReplay: the basic durability loop — appended
// records survive a close/reopen, sequence numbers continue densely,
// and replay returns every document in order.
func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "r", 5)
	st := w.Stats()
	if st.Records != 5 || st.LastSeq != 5 || st.Segments != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OldestUnix == 0 {
		t.Error("no oldest-record timestamp recorded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after reopen = %d, want 5", got)
	}
	ack, err := w2.Append(testRecipe(t, "r-5"))
	if err != nil || ack.Seq != 6 {
		t.Fatalf("append after reopen: ack %+v err %v, want seq 6", ack, err)
	}

	seqs, ids := replaySeqs(t, dir, 0)
	if len(seqs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i)+1 || ids[i] != fmt.Sprintf("r-%d", i) {
			t.Fatalf("replay[%d] = seq %d id %s", i, seq, ids[i])
		}
	}

	// upTo freezes the stream at a snapshot boundary.
	if seqs, _ := replaySeqs(t, dir, 3); len(seqs) != 3 {
		t.Fatalf("replay upTo=3 returned %d records", len(seqs))
	}
}

// TestWALDuplicateAck: a canonical-hash duplicate writes nothing,
// returns the original sequence, and the dedup index survives reopen.
func TestWALDuplicateAck(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(testRecipe(t, "same")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := w.Stats().Bytes
	ack, err := w.Append(testRecipe(t, "same"))
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Duplicate || ack.Seq != 1 {
		t.Fatalf("duplicate ack = %+v", ack)
	}
	if st := w.Stats(); st.Records != 1 || st.Bytes != sizeBefore {
		t.Fatalf("duplicate wrote bytes: %+v", st)
	}
	w.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	ack, err = w2.Append(testRecipe(t, "same"))
	if err != nil || !ack.Duplicate || ack.Seq != 1 {
		t.Fatalf("dedup index lost across reopen: ack %+v err %v", ack, err)
	}
	hash := recipe.CanonicalHash(testRecipe(t, "same"))
	if seq, ok := w2.Contains(hash); !ok || seq != 1 {
		t.Fatalf("Contains = %d, %v", seq, ok)
	}
}

// TestWALSegmentRotation: a tiny rotation threshold seals a segment
// per record; recovery walks the whole chain.
func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "rot", 4)
	if st := w.Stats(); st.Segments != 5 {
		// Four sealed segments plus the fresh one rotation opened.
		t.Fatalf("segments = %d, want 5", st.Segments)
	}
	w.Close()

	w2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d", got)
	}
	if seqs, _ := replaySeqs(t, dir, 0); len(seqs) != 4 {
		t.Fatalf("replayed %d records across segments, want 4", len(seqs))
	}
}

// lastSegPath returns the path of the highest-numbered segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

// TestWALTornTailRecovery: every shape of partial final write — cut
// length prefix, cut payload, cut digest, junk length, zero length —
// is truncated away on reopen, keeping exactly the acknowledged
// records, and the file converges back to its pre-damage size.
func TestWALTornTailRecovery(t *testing.T) {
	damage := []struct {
		name string
		// mutate appends or cuts bytes at the segment tail; wantRecords
		// is the record count recovery must preserve (all 3 appends were
		// acknowledged before the damage in every tolerated case except
		// the bit flip, which eats the final record).
		mutate      func(t *testing.T, path string)
		wantRecords uint64
	}{
		{"cut mid-digest", func(t *testing.T, path string) { chop(t, path, 5) }, 2},
		{"trailing length prefix only", func(t *testing.T, path string) { extend(t, path, []byte{0, 0, 0, 40}) }, 3},
		{"trailing zero-length frame", func(t *testing.T, path string) { extend(t, path, []byte{0, 0, 0, 0}) }, 3},
		{"trailing junk frame", func(t *testing.T, path string) {
			extend(t, path, append([]byte{0, 0, 0, 8}, []byte("garbage!")...))
		}, 3},
		{"bit flip in final record", func(t *testing.T, path string) { flipByte(t, path, -10) }, 2},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, "torn", 3)
			w.Close()
			path := lastSegPath(t, dir)
			tc.mutate(t, path)

			w2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery refused a torn tail: %v", err)
			}
			if st := w2.Stats(); st.Records != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", st.Records, tc.wantRecords)
			}
			// The log stays appendable and sequence numbers stay dense.
			ack, err := w2.Append(testRecipe(t, "post-recovery"))
			if err != nil || ack.Seq != tc.wantRecords+1 {
				t.Fatalf("append after recovery: %+v, %v", ack, err)
			}
			w2.Close()
			if seqs, _ := replaySeqs(t, dir, 0); uint64(len(seqs)) != tc.wantRecords+1 {
				t.Fatalf("replayed %d records, want %d", len(seqs), tc.wantRecords+1)
			}
		})
	}
}

// TestWALCorruptionRefused: damage outside the final segment's tail —
// bit flips in sealed history, a vanished segment, a future format —
// must refuse to load rather than silently drop acknowledged records.
func TestWALCorruptionRefused(t *testing.T) {
	t.Run("bit flip in sealed segment", func(t *testing.T) {
		dir := t.TempDir()
		w, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, "seal", 3)
		w.Close()
		flipByte(t, filepath.Join(dir, segName(2)), -10)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
		if err := Replay(dir, 0, func(uint64, json.RawMessage) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing middle segment", func(t *testing.T) {
		dir := t.TempDir()
		w, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, "gap", 3)
		w.Close()
		if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("future segment format", func(t *testing.T) {
		dir := t.TempDir()
		writeSegmentFile(t, dir, 1, `{"format":99,"segment":1}`)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrVersion) {
			t.Fatalf("Open = %v, want ErrVersion", err)
		}
	})
	t.Run("future record version", func(t *testing.T) {
		dir := t.TempDir()
		writeSegmentFile(t, dir, 1, `{"format":1,"segment":1}`,
			`{"v":99,"seq":1,"hash":"`+zeroHashHex()+`","recipe":{}}`)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrVersion) {
			t.Fatalf("Open = %v, want ErrVersion", err)
		}
	})
	t.Run("sequence discontinuity", func(t *testing.T) {
		dir := t.TempDir()
		writeSegmentFile(t, dir, 1, `{"format":1,"segment":1}`,
			`{"v":1,"seq":1,"hash":"`+zeroHashHex()+`","recipe":{}}`,
			`{"v":1,"seq":3,"hash":"`+zeroHashHex()+`","recipe":{}}`)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
}

// TestWALCrashDuringRotation: the table of states a kill -9 can leave
// mid-rotation. In every one the sealed previous segment must survive
// byte-identical, every acknowledged record must replay, and the log
// must keep accepting appends.
func TestWALCrashDuringRotation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, newest string)
	}{
		{"crash before new segment created", func(t *testing.T, newest string) {
			if err := os.Remove(newest); err != nil {
				t.Fatal(err)
			}
		}},
		{"crash before header written", func(t *testing.T, newest string) {
			if err := os.Truncate(newest, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"crash mid-magic", func(t *testing.T, newest string) {
			if err := os.WriteFile(newest, []byte("RHEO"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"crash mid-header", func(t *testing.T, newest string) {
			if err := os.WriteFile(newest, append([]byte(walMagic), 0, 0, 0, 40), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"crash after header complete", func(t *testing.T, newest string) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{SegmentBytes: 1})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, "rotcrash", 2)
			w.Close()
			// Layout now: seg1(rec1) seg2(rec2) seg3(empty, current).
			sealed := filepath.Join(dir, segName(2))
			before, err := os.ReadFile(sealed)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, filepath.Join(dir, segName(3)))

			w2, err := Open(dir, Options{SegmentBytes: 1})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			after, err := os.ReadFile(sealed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("recovery rewrote a sealed segment")
			}
			if seqs, _ := replaySeqs(t, dir, 0); len(seqs) != 2 {
				t.Fatalf("replayed %d acknowledged records, want 2", len(seqs))
			}
			ack, err := w2.Append(testRecipe(t, "after-rotation-crash"))
			if err != nil || ack.Seq != 3 {
				t.Fatalf("append after rotation crash: %+v, %v", ack, err)
			}
			w2.Close()
		})
	}
}

// TestWALRecoveryIdempotent: recovering a damaged log twice converges —
// the second open finds exactly the bytes the first one left.
func TestWALRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "idem", 3)
	w.Close()
	extend(t, lastSegPath(t, dir), []byte{0, 0, 0, 9, 'j', 'u', 'n', 'k'})

	for i := 0; i < 2; i++ {
		w, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		w.Close()
	}
	want := snapshotDir(t, dir)
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got := snapshotDir(t, dir); !bytes.Equal(got, want) {
		t.Fatal("repeated recovery kept changing the log bytes")
	}
}

// chop truncates n bytes off the end of path.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// extend appends raw bytes to path.
func extend(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// flipByte XORs one byte at offset (negative: from the end).
func flipByte(t *testing.T, path string, offset int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := offset
	if i < 0 {
		i += int64(len(b))
	}
	b[i] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeSegmentFile hand-crafts a segment: envelope from headerJSON,
// then one correctly-framed record per payload (lengths and digests
// valid, so only the JSON content is under test).
func writeSegmentFile(t *testing.T, dir string, n int, headerJSON string, payloads ...string) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(headerJSON)))
	buf.Write(lenBuf[:])
	buf.WriteString(headerJSON)
	for _, p := range payloads {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
		buf.Write(lenBuf[:])
		buf.WriteString(p)
		sum := sha256.Sum256([]byte(p))
		buf.Write(sum[:])
	}
	if err := os.WriteFile(filepath.Join(dir, segName(n)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func zeroHashHex() string {
	var h [sha256.Size]byte
	return fmt.Sprintf("%x", h[:])
}

// snapshotDir concatenates every segment's bytes for byte-identity
// assertions.
func snapshotDir(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, n := range segs {
		b, err := os.ReadFile(filepath.Join(dir, segName(n)))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// FuzzWALRecord throws arbitrary bytes at segment recovery: whatever
// the file holds, Open either refuses with the typed taxonomy or
// recovers a log that is immediately usable — appendable, replayable,
// and stable under a second recovery.
func FuzzWALRecord(f *testing.F) {
	seedDir := f.TempDir()
	w, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := &recipe.Recipe{ID: fmt.Sprintf("seed-%d", i), Title: "ゼリー",
			Ingredients: []recipe.Ingredient{{Name: "ゼラチン", Amount: "5g"}, {Name: "水", Amount: "400ml"}}}
		if err := r.Resolve(); err != nil {
			f.Fatal(err)
		}
		if _, err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)                // intact
	f.Add(valid[:len(valid)-7]) // torn tail
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)                                // bit flip
	f.Add(append(bytes.Clone(valid), 0, 0, 0, 0)) // zero-length frame
	futureRec, _ := json.Marshal(walRecord{V: walRecordV + 1, Seq: 3, Hash: zeroHashHex(), Recipe: json.RawMessage(`{}`)})
	frame := make([]byte, 4)
	binary.BigEndian.PutUint32(frame, uint32(len(futureRec)))
	frame = append(frame, futureRec...)
	sum := sha256.Sum256(futureRec)
	frame = append(frame, sum[:]...)
	f.Add(append(bytes.Clone(valid), frame...)) // future record version
	f.Add([]byte("RHEO"))                       // torn header
	f.Add([]byte{})                             // empty file

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Open failed outside the error taxonomy: %v", err)
			}
			return
		}
		recovered := w.Stats().Records
		r := &recipe.Recipe{ID: "fuzz-post", Title: "ゼリー",
			Ingredients: []recipe.Ingredient{{Name: "ゼラチン", Amount: "5g"}, {Name: "水", Amount: "400ml"}}}
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
		ack, err := w.Append(r)
		if err != nil {
			t.Fatalf("recovered log refused an append: %v", err)
		}
		if !ack.Duplicate && ack.Seq != w.LastSeq() {
			t.Fatalf("ack seq %d vs LastSeq %d", ack.Seq, w.LastSeq())
		}
		var replayed uint64
		if err := Replay(dir, 0, func(uint64, json.RawMessage) error { replayed++; return nil }); err != nil {
			t.Fatalf("recovered log refused replay: %v", err)
		}
		if replayed > recovered+1 {
			t.Fatalf("replayed %d records from %d recovered (+1 appended)", replayed, recovered)
		}
		w.Close()
		if _, err := Open(dir, Options{}); err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
	})
}

// TestWALAppendRejectsOversizeRecord: a recipe whose encoded record
// would exceed maxWALRecordLen is refused with ErrTooLarge BEFORE any
// bytes land — readFrame treats an over-limit length as corruption, so
// acking such a record would promise durability recovery cannot honor.
// The log stays fully usable afterwards.
func TestWALAppendRejectsOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	huge := testRecipe(t, "huge")
	huge.Description = strings.Repeat("a", maxWALRecordLen+1)
	if _, err := w.Append(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize append err = %v, want ErrTooLarge", err)
	}
	if st := w.Stats(); st.Records != 0 || st.LastSeq != 0 {
		t.Fatalf("oversize append mutated the log: %+v", st)
	}
	appendN(t, w, "after-oversize", 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after rejected oversize append: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.Records != 2 || st.LastSeq != 2 {
		t.Fatalf("recovered stats = %+v, want 2 records", st)
	}
}

// TestWALFailedWriteGarbageOverwritten: a failed in-place write (e.g.
// ENOSPC mid-frame) leaves garbage bytes past the last acknowledged
// frame. Because Append targets the tracked offset with WriteAt, the
// next acknowledged frame overwrites the garbage head, and rotation
// truncates whatever remains — so a sealed segment scans clean end to
// end and no acknowledged record is ever stranded behind garbage.
func TestWALFailedWriteGarbageOverwritten(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1: every append crosses the threshold, so the segment
	// carrying the garbage tail is sealed (rotation) right after the
	// overwriting append — the strictest recovery posture, since sealed
	// segments get no torn-tail tolerance.
	w, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "pre-garbage", 1) // lands in seg 1, rotates to seg 2
	active := filepath.Join(dir, segName(w.segNum))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage longer than any frame we will append, emulating a torn
	// write whose error meant no WAL state advanced.
	if _, err := f.Write(bytes.Repeat([]byte{0xAA}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, "post-garbage", 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("recovery with garbage-tail segment: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.Records != 3 || st.LastSeq != 3 {
		t.Fatalf("recovered stats = %+v, want 3 records", st)
	}
	seqs, ids := replaySeqs(t, dir, 0)
	if len(seqs) != 3 || ids[0] != "pre-garbage-0" || ids[1] != "post-garbage-0" || ids[2] != "post-garbage-1" {
		t.Fatalf("replayed %v / %v", seqs, ids)
	}
}
