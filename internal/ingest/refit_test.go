package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// fitOptions is a refit configuration small enough to run several
// times per test.
func fitOptions() pipeline.Options {
	o := pipeline.DefaultOptions()
	o.Corpus.Scale = 0.1
	o.Model.Iterations = 60
	o.Model.BurnIn = 30
	o.UseW2VFilter = false
	return o
}

// bytesSource reopens an in-memory JSONL corpus — the reopenable
// contract RunStream's two passes depend on.
func bytesSource(b []byte) pipeline.StreamSource {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(b)), nil
	}
}

// baseCorpus renders a small synthetic corpus to JSONL.
func baseCorpus(t testing.TB, n int) []byte {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Scale = 0.1
	var buf bytes.Buffer
	if err := corpus.GenerateTo(cfg, &buf, n); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// walRecipes generates k corpus-realistic recipes (so they survive the
// dataset filters) re-labelled as online arrivals.
func walRecipes(t testing.TB, k int) []*recipe.Recipe {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Scale = 0.1
	recs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < k {
		t.Fatalf("corpus too small: %d < %d", len(recs), k)
	}
	out := make([]*recipe.Recipe, k)
	for i := 0; i < k; i++ {
		r := *recs[len(recs)-1-i]
		r.ID = fmt.Sprintf("online-%d", i)
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
		out[i] = &r
	}
	return out
}

// switchableFault flips an injected store error on and off.
type switchableFault struct {
	on  atomic.Bool
	err error
}

func (s *switchableFault) Fault(op string) resilience.Fault {
	if s.on.Load() {
		return resilience.Fault{Err: s.err}
	}
	return resilience.Fault{}
}

// refitRig is a manager + registry + refitter over temp dirs.
type refitRig struct {
	mgr    *Manager
	reg    *storage.Registry
	outage *switchableFault
	ref    *Refitter
	walDir string
	shard  string
	base   []byte
}

func newRefitRig(t *testing.T, minRecords uint64) *refitRig {
	t.Helper()
	rig := &refitRig{
		walDir: t.TempDir(),
		shard:  t.TempDir(),
		base:   baseCorpus(t, 120),
		outage: &switchableFault{err: errors.New("store unplugged")},
	}
	kv := storage.NewKVStore()
	kv.Faults = rig.outage
	rig.reg = storage.NewRegistry(kv)
	var err error
	rig.mgr, err = OpenManager(ManagerOptions{Dir: rig.walDir, ShardDir: rig.shard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.mgr.Close() })
	rig.ref, err = NewRefitter(RefitOptions{
		Manager:    rig.mgr,
		Base:       bytesSource(rig.base),
		Pipeline:   fitOptions(),
		Registry:   rig.reg,
		MinRecords: minRecords,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// TestRefitOnceFoldsWALAndPromotes: the full cycle — WAL records past
// the watermark trigger a fit over base+WAL, the bundle is published
// and promoted, the watermark advances durably, and the promoted
// bundle actually contains the online recipes.
func TestRefitOnceFoldsWALAndPromotes(t *testing.T) {
	ctx := context.Background()
	rig := newRefitRig(t, 1)
	for _, r := range walRecipes(t, 4) {
		if _, err := rig.mgr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := rig.mgr.WAL().LastSeq()

	var promoted atomic.Int64
	rig.ref.opts.OnPromoted = func(out *pipeline.Output, gen storage.Generation) {
		promoted.Store(gen.ID)
		found := 0
		for _, d := range out.Docs {
			if len(d.RecipeID) >= 7 && d.RecipeID[:7] == "online-" {
				found++
			}
		}
		if found == 0 {
			t.Error("promoted model contains no online recipes")
		}
	}

	if !rig.ref.Due() {
		t.Fatal("refitter not due with records past the watermark")
	}
	gen, ran, err := rig.ref.RefitOnce(ctx)
	if err != nil || !ran {
		t.Fatalf("RefitOnce: ran=%v err=%v", ran, err)
	}
	if promoted.Load() != gen.ID {
		t.Fatalf("OnPromoted saw generation %d, RefitOnce returned %d", promoted.Load(), gen.ID)
	}
	cur, err := rig.reg.Promoted(ctx)
	if err != nil || cur.ID != gen.ID {
		t.Fatalf("registry promoted %d (%v), want %d", cur.ID, err, gen.ID)
	}
	if got := rig.mgr.Watermark(); got != snapshot {
		t.Fatalf("watermark = %d, want %d", got, snapshot)
	}
	if got := pipeline.LoadIngestWatermark(rig.shard); got != snapshot {
		t.Fatalf("persisted watermark = %d, want %d", got, snapshot)
	}
	if st := rig.mgr.Status(); st.RefitState != RefitIdle || st.LastPromoted != gen.ID {
		t.Fatalf("status after refit = %+v", st)
	}

	// Caught up: nothing to do.
	if rig.ref.Due() {
		t.Fatal("refitter still due after catching up")
	}
	if _, ran, err := rig.ref.RefitOnce(ctx); ran || err != nil {
		t.Fatalf("caught-up RefitOnce ran=%v err=%v", ran, err)
	}
}

// TestRefitCrashConvergence: a crash after promotion but before the
// watermark save (the worst spot — work done, bookkeeping lost) must
// re-converge on the SAME generation: the deterministic stream and fit
// reproduce byte-identical bundle bytes, and Publish deduplicates by
// content digest instead of forking history.
func TestRefitCrashConvergence(t *testing.T) {
	ctx := context.Background()
	rig := newRefitRig(t, 1)
	for _, r := range walRecipes(t, 3) {
		if _, err := rig.mgr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	gen1, ran, err := rig.ref.RefitOnce(ctx)
	if err != nil || !ran {
		t.Fatalf("first refit: ran=%v err=%v", ran, err)
	}

	// Simulate the crash: a fresh process whose watermark never made it
	// to disk re-runs the whole cycle over the same WAL.
	mgr2, err := OpenManager(ManagerOptions{Dir: rig.walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if mgr2.Watermark() != 0 {
		t.Fatalf("rig leaked a watermark into the crash manager: %d", mgr2.Watermark())
	}
	ref2, err := NewRefitter(RefitOptions{
		Manager:  mgr2,
		Base:     bytesSource(rig.base),
		Pipeline: fitOptions(),
		Registry: rig.reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen2, ran, err := ref2.RefitOnce(ctx)
	if err != nil || !ran {
		t.Fatalf("re-run refit: ran=%v err=%v", ran, err)
	}
	if gen2.ID != gen1.ID || gen2.Digest != gen1.Digest {
		t.Fatalf("re-run forked history: %d/%s vs %d/%s", gen2.ID, gen2.Digest, gen1.ID, gen1.Digest)
	}
	cur, err := rig.reg.Promoted(ctx)
	if err != nil || cur.ID != gen1.ID {
		t.Fatalf("promoted = %d (%v), want %d", cur.ID, err, gen1.ID)
	}
}

// TestRefitFailureDegradesThenRecovers: a dead store fails the refit
// (reported on /statusz, watermark untouched) without poisoning
// anything — the next attempt with the store back converges normally.
func TestRefitFailureDegradesThenRecovers(t *testing.T) {
	ctx := context.Background()
	rig := newRefitRig(t, 1)
	for _, r := range walRecipes(t, 3) {
		if _, err := rig.mgr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	rig.outage.on.Store(true)
	_, ran, err := rig.ref.RefitOnce(ctx)
	if err == nil || !ran {
		t.Fatalf("refit against a dead store: ran=%v err=%v", ran, err)
	}
	st := rig.mgr.Status()
	if st.RefitState != RefitFailed || st.RefitError == "" {
		t.Fatalf("status after failed refit = %+v", st)
	}
	if rig.mgr.Watermark() != 0 {
		t.Fatalf("failed refit advanced the watermark to %d", rig.mgr.Watermark())
	}
	if d := rig.ref.backoffDelay(); d <= 0 {
		t.Fatalf("no backoff after failure: %v", d)
	}

	rig.outage.on.Store(false)
	gen, ran, err := rig.ref.RefitOnce(ctx)
	if err != nil || !ran {
		t.Fatalf("recovery refit: ran=%v err=%v", ran, err)
	}
	if st := rig.mgr.Status(); st.RefitState != RefitIdle || st.LastPromoted != gen.ID {
		t.Fatalf("status after recovery = %+v", st)
	}
}

// TestRefitDueTriggers: the count trigger needs MinRecords; the age
// trigger fires earlier once the oldest pending record exceeds MaxAge.
func TestRefitDueTriggers(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	mgr, err := OpenManager(ManagerOptions{
		Dir:   t.TempDir(),
		Clock: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	ref, err := NewRefitter(RefitOptions{
		Manager:    mgr,
		Registry:   storage.NewRegistry(storage.NewKVStore()),
		MinRecords: 5,
		MaxAge:     time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Due() {
		t.Fatal("due with an empty log")
	}
	if _, err := mgr.Append(testRecipe(t, "due-0")); err != nil {
		t.Fatal(err)
	}
	if ref.Due() {
		t.Fatal("due below MinRecords and MaxAge")
	}
	now = now.Add(2 * time.Minute)
	if !ref.Due() {
		t.Fatal("age trigger did not fire")
	}
	now = now.Add(-2 * time.Minute)
	for i := 1; i < 5; i++ {
		if _, err := mgr.Append(testRecipe(t, fmt.Sprintf("due-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.Due() {
		t.Fatal("count trigger did not fire")
	}
}

// TestCombinedSourceDeterministic: the refit stream must yield
// byte-identical content every time it is opened — that determinism is
// the first link in the idempotent refit chain — and WAL records past
// the snapshot must stay out.
func TestCombinedSourceDeterministic(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.Append(testRecipe(t, fmt.Sprintf("cs-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	base := []byte(`{"id":"base-1","title":"ゼリー","ingredients":[{"name":"ゼラチン","amount":"5g"}]}` + "\n")
	snapshot := w.LastSeq()

	read := func() []byte {
		src := CombinedSource(bytesSource(base), dir, snapshot)
		rc, err := src()
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		b, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := read()
	if !bytes.Contains(first, []byte("base-1")) || !bytes.Contains(first, []byte("cs-2")) {
		t.Fatalf("combined stream missing content:\n%s", first)
	}

	// A record appended past the snapshot must not leak into a re-read.
	if _, err := w.Append(testRecipe(t, "cs-late")); err != nil {
		t.Fatal(err)
	}
	second := read()
	if !bytes.Equal(first, second) {
		t.Fatal("combined stream not byte-identical across opens")
	}
	if bytes.Contains(second, []byte("cs-late")) {
		t.Fatal("record past the snapshot leaked into the frozen stream")
	}

	// The stream is valid JSONL end to end.
	recs, rep, err := recipe.ReadJSONLenient(bytes.NewReader(first), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 0 || len(recs) != 4 {
		t.Fatalf("combined stream decoded to %d records (%d skipped)", len(recs), len(rep.Skipped))
	}
}
