package rheology

import (
	"sort"

	"repro/internal/recipe"
)

// Predict estimates the texture attributes of a gel/emulsion
// composition. Per-gel dose-response curves are piecewise-linear
// interpolations through the Table I measurements (so every Table I
// composition reproduces its measured attributes exactly); gel mixtures
// combine additively with the gelatin-agar adhesiveness synergy
// observed in Table I data 5; emulsion effects are multiplicative
// factors calibrated to the Bavarois and Milk jelly studies of Table
// II(b): fat-phase emulsions (cream, yolk, albumen) harden the gel and
// raise cohesiveness strongly, milk mildly, while both suppress
// adhesiveness (active-filler behaviour of emulsion-filled gels,
// Farjami & Madadlou 2019).
func Predict(gels [recipe.NumGels]float64, emus [recipe.NumEmulsions]float64) Attributes {
	var a Attributes
	for g := recipe.Gel(0); g < recipe.NumGels; g++ {
		c := gels[g]
		if c <= 0 {
			continue
		}
		a.Hardness += gelCurves[g].hardness.at(c)
		a.Cohesiveness += gelCurves[g].cohesiveness.at(c) * gelShare(gels, g)
		a.Adhesiveness += gelCurves[g].adhesiveness.at(c)
	}
	// Mixed-gel interactions, calibrated to Table I data 5 (gelatin 0.03
	// + agar 0.03 → H 3.01, C 0.35, A 12.6): mixing is antagonistic for
	// hardness (the networks interpenetrate rather than add), mildly
	// synergistic for cohesiveness, and strongly synergistic for
	// adhesiveness. mixIdx = 1 − Σ shareᵢ² is zero for a single gel and
	// ½ for a 50/50 mixture, so single-gel rows stay exact.
	mix := mixIndex(gels)
	a.Hardness *= 1 - hardnessAntagonism*mix
	a.Cohesiveness *= 1 + cohesivenessSynergy*mix
	a.Adhesiveness += adhesionSynergy * gels[recipe.Gelatin] * gels[recipe.Agar]

	fat := emus[recipe.RawCream] + emus[recipe.EggYolk] + emus[recipe.EggAlbumen]
	milk := emus[recipe.Milk] + emus[recipe.Yogurt]
	sugar := emus[recipe.Sugar]
	a.Hardness *= 1 + hardFat*fat + hardMilk*milk + hardSugar*sugar
	a.Cohesiveness *= 1 + cohFat*fat + cohMilk*milk
	// Cohesiveness is the second-to-first compression area ratio c/a,
	// which cannot exceed 1; the emulsion multipliers are calibrated at
	// fat shares ≤ 0.28 and would extrapolate past it.
	if a.Cohesiveness > 1 {
		a.Cohesiveness = 1
	}
	a.Adhesiveness /= 1 + adhFatSuppress*fat + adhMilkSuppress*milk
	return a
}

// PredictMeasurement wraps Predict for a Measurement-shaped input.
func PredictMeasurement(m Measurement) Attributes {
	return Predict(m.Gels, m.Emulsions)
}

// Emulsion calibration constants, fitted to Table II(b) against the
// pure 2.5% gelatin reference (Table I data 3).
const (
	hardFat   = 12.8 // Bavarois: ×5.4 hardness at fat share 0.28, milk 0.4
	hardMilk  = 1.94 // Milk jelly: ×2.54 at milk share 0.787
	hardSugar = 0.5

	cohFat  = 12.0 // Bavarois: ×4.76 cohesiveness
	cohMilk = 0.9  // Milk jelly: ×1.7

	adhFatSuppress  = 17.3 // Bavarois: ÷6 adhesiveness
	adhMilkSuppress = 0.38 // Milk jelly: ÷1.3

	adhesionSynergy = 11000 // RU per (gelatin ratio × agar ratio)

	hardnessAntagonism  = 0.8   // Table I data 5: 4.99 RU additive → 3.01 measured
	cohesivenessSynergy = 0.745 // Table I data 5: 0.255 blended → 0.35 measured
)

// mixIndex returns 1 − Σ shareᵢ², the effective mixing degree of the
// gel doses: 0 for a single gel, ½ for an even two-gel mixture.
func mixIndex(gels [recipe.NumGels]float64) float64 {
	total := 0.0
	for _, c := range gels {
		total += c
	}
	if total <= 0 {
		return 0
	}
	s := 0.0
	for _, c := range gels {
		sh := c / total
		s += sh * sh
	}
	return 1 - s
}

// gelShare returns gel g's fraction of the total gel dose, used to
// blend cohesiveness (a ratio, not an extensive quantity) across mixed
// gels.
func gelShare(gels [recipe.NumGels]float64, g recipe.Gel) float64 {
	total := 0.0
	for _, c := range gels {
		total += c
	}
	if total <= 0 {
		return 0
	}
	return gels[g] / total
}

// curve is a piecewise-linear dose-response curve with linear
// extrapolation clamped at zero.
type curve struct {
	x, y []float64 // strictly increasing x
}

func (c curve) at(x float64) float64 {
	n := len(c.x)
	if n == 0 {
		return 0
	}
	if x <= c.x[0] {
		// Extrapolate toward zero dose: response vanishes at zero.
		return c.y[0] * x / c.x[0]
	}
	if x >= c.x[n-1] {
		if n == 1 {
			return c.y[n-1]
		}
		slope := (c.y[n-1] - c.y[n-2]) / (c.x[n-1] - c.x[n-2])
		v := c.y[n-1] + slope*(x-c.x[n-1])
		if v < 0 {
			v = 0
		}
		return v
	}
	i := sort.SearchFloat64s(c.x, x)
	if c.x[i] == x {
		return c.y[i]
	}
	t := (x - c.x[i-1]) / (c.x[i] - c.x[i-1])
	return c.y[i-1] + t*(c.y[i]-c.y[i-1])
}

// gelCurves holds the per-gel dose-response curves, one per attribute,
// built from the single-gel rows of Table I. The agar curves exclude
// data 5 (a gelatin-agar mixture) and use data 13 as the high-dose
// anchor.
var gelCurves = [recipe.NumGels]struct {
	hardness, cohesiveness, adhesiveness curve
}{
	recipe.Gelatin: {
		hardness:     curve{[]float64{0.018, 0.02, 0.025, 0.03}, []float64{0.20, 0.3, 0.72, 2.78}},
		cohesiveness: curve{[]float64{0.018, 0.02, 0.025, 0.03}, []float64{0.6, 0.59, 0.17, 0.31}},
		adhesiveness: curve{[]float64{0.018, 0.02, 0.025, 0.03}, []float64{0.1, 0.04, 0.57, 0.42}},
	},
	recipe.Kanten: {
		hardness:     curve{[]float64{0.008, 0.01, 0.012, 0.02}, []float64{2.2, 3.5, 5.0, 5.67}},
		cohesiveness: curve{[]float64{0.008, 0.01, 0.012, 0.02}, []float64{0.12, 0.1, 0.8, 0.03}},
		adhesiveness: curve{[]float64{0.008, 0.01, 0.012, 0.02}, []float64{0, 0, 0, 0}},
	},
	recipe.Agar: {
		hardness:     curve{[]float64{0.008, 0.01, 0.012, 0.03}, []float64{1.0, 1.5, 2.7, 2.21}},
		cohesiveness: curve{[]float64{0.008, 0.01, 0.012, 0.03}, []float64{0.48, 0.33, 0.28, 0.20}},
		adhesiveness: curve{[]float64{0.008, 0.01, 0.012, 0.03}, []float64{0, 0.01, 0.02, 1.95}},
	},
}
