package rheology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/recipe"
)

func TestTableIShape(t *testing.T) {
	if len(TableI) != 13 {
		t.Fatalf("Table I has %d rows, want 13", len(TableI))
	}
	// All single-gel except data 5.
	for i, m := range TableI {
		n := 0
		for _, c := range m.Gels {
			if c > 0 {
				n++
			}
		}
		if i == 4 {
			if n != 2 {
				t.Errorf("data 5 should be a two-gel mixture")
			}
		} else if n != 1 {
			t.Errorf("data %s should be single-gel, has %d gels", m.ID, n)
		}
	}
	// Monotone hardness within each pure-gel series.
	check := func(rows []int) {
		for i := 1; i < len(rows); i++ {
			if TableI[rows[i]].Attr.Hardness <= TableI[rows[i-1]].Attr.Hardness {
				// Agar's last row (13) dips; only the first three must rise.
				t.Errorf("hardness not increasing at row %s", TableI[rows[i]].ID)
			}
		}
	}
	check([]int{0, 1, 2, 3}) // gelatin
	check([]int{5, 6, 7, 8}) // kanten
	check([]int{9, 10, 11})  // agar (first three)
}

func TestPredictReproducesSingleGelRows(t *testing.T) {
	for i, m := range TableI {
		if i == 4 {
			continue // mixture row tested separately
		}
		got := PredictMeasurement(m)
		if math.Abs(got.Hardness-m.Attr.Hardness) > 1e-9 ||
			math.Abs(got.Cohesiveness-m.Attr.Cohesiveness) > 1e-9 ||
			math.Abs(got.Adhesiveness-m.Attr.Adhesiveness) > 1e-9 {
			t.Errorf("data %s: predicted %+v, measured %+v", m.ID, got, m.Attr)
		}
	}
}

func TestPredictMixtureRow(t *testing.T) {
	m := TableI[4] // gelatin 0.03 + agar 0.03
	got := PredictMeasurement(m)
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / b }
	if relErr(got.Hardness, m.Attr.Hardness) > 0.05 {
		t.Errorf("mixture hardness = %g, measured %g", got.Hardness, m.Attr.Hardness)
	}
	if relErr(got.Cohesiveness, m.Attr.Cohesiveness) > 0.05 {
		t.Errorf("mixture cohesiveness = %g, measured %g", got.Cohesiveness, m.Attr.Cohesiveness)
	}
	if relErr(got.Adhesiveness, m.Attr.Adhesiveness) > 0.1 {
		t.Errorf("mixture adhesiveness = %g, measured %g", got.Adhesiveness, m.Attr.Adhesiveness)
	}
}

func TestPredictReproducesDishes(t *testing.T) {
	// The calibration constants were fitted to these two dishes; verify
	// the fit holds to ~15%.
	for _, m := range []Measurement{Bavarois, MilkJelly} {
		got := PredictMeasurement(m)
		if math.Abs(got.Hardness-m.Attr.Hardness)/m.Attr.Hardness > 0.15 {
			t.Errorf("%s hardness = %g, measured %g", m.ID, got.Hardness, m.Attr.Hardness)
		}
		if math.Abs(got.Cohesiveness-m.Attr.Cohesiveness)/m.Attr.Cohesiveness > 0.15 {
			t.Errorf("%s cohesiveness = %g, measured %g", m.ID, got.Cohesiveness, m.Attr.Cohesiveness)
		}
	}
	// Ordering: Bavarois harder and more cohesive than Milk jelly; both
	// harder than the pure gel.
	b, mj := PredictMeasurement(Bavarois), PredictMeasurement(MilkJelly)
	pure := PredictMeasurement(PureGelatin25)
	if !(b.Hardness > mj.Hardness && mj.Hardness > pure.Hardness) {
		t.Errorf("hardness ordering violated: %g, %g, %g", b.Hardness, mj.Hardness, pure.Hardness)
	}
	if !(b.Cohesiveness > mj.Cohesiveness) {
		t.Errorf("cohesiveness ordering violated: %g vs %g", b.Cohesiveness, mj.Cohesiveness)
	}
}

func TestPredictMonotoneInGelatin(t *testing.T) {
	prev := -1.0
	for c := 0.005; c <= 0.05; c += 0.002 {
		a := Predict([recipe.NumGels]float64{c, 0, 0}, [recipe.NumEmulsions]float64{})
		if a.Hardness < prev {
			t.Fatalf("gelatin hardness not monotone at %g", c)
		}
		prev = a.Hardness
	}
}

func TestPredictZeroGelsIsZero(t *testing.T) {
	a := Predict([recipe.NumGels]float64{}, [recipe.NumEmulsions]float64{0.1, 0, 0, 0.2, 0.4, 0})
	if a.Hardness != 0 || a.Cohesiveness != 0 || a.Adhesiveness != 0 {
		t.Errorf("no gel should mean no gel texture: %+v", a)
	}
}

func TestPredictEmulsionDirections(t *testing.T) {
	gels := [recipe.NumGels]float64{0.025, 0, 0}
	base := Predict(gels, [recipe.NumEmulsions]float64{})
	withCream := Predict(gels, [recipe.NumEmulsions]float64{0, 0, 0, 0.2, 0, 0})
	withMilk := Predict(gels, [recipe.NumEmulsions]float64{0, 0, 0, 0, 0.5, 0})
	if withCream.Hardness <= base.Hardness || withMilk.Hardness <= base.Hardness {
		t.Error("emulsions should harden the gel")
	}
	if withCream.Cohesiveness <= base.Cohesiveness {
		t.Error("cream should raise cohesiveness")
	}
	if withCream.Adhesiveness >= base.Adhesiveness {
		t.Error("cream should suppress adhesiveness")
	}
	if withCream.Hardness <= withMilk.Hardness {
		t.Error("fat-phase emulsions should harden more than milk at comparable share")
	}
}

func TestMeasurementFeatureVectors(t *testing.T) {
	m := TableI[0]
	gf := m.GelFeatures()
	if len(gf) != recipe.NumGels {
		t.Fatal("bad dims")
	}
	if math.Abs(gf[recipe.Gelatin]-recipe.InfoQuantity(0.018)) > 1e-12 {
		t.Error("gel feature wrong")
	}
	if gf[recipe.Kanten] != recipe.InfoQuantity(0) {
		t.Error("absent gel should floor")
	}
	if len(m.EmulsionFeatures()) != recipe.NumEmulsions {
		t.Error("bad emulsion dims")
	}
	if m.String() == "" || len(m.GelVector()) != 3 || len(m.EmulsionVector()) != 6 {
		t.Error("accessors")
	}
}

func TestSimulateExtractRoundTrip(t *testing.T) {
	f := func(h, c, a uint8) bool {
		attr := Attributes{
			Hardness:     0.2 + float64(h%50)/10,
			Cohesiveness: 0.05 + float64(c%90)/100,
			Adhesiveness: float64(a%30) / 10,
		}
		got, err := Simulate(attr).Extract()
		if err != nil {
			return false
		}
		return math.Abs(got.Hardness-attr.Hardness) < 0.02*attr.Hardness+1e-9 &&
			math.Abs(got.Cohesiveness-attr.Cohesiveness) < 0.03 &&
			math.Abs(got.Adhesiveness-attr.Adhesiveness) < 0.05*attr.Adhesiveness+0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSimulateCurveShape(t *testing.T) {
	attr := Attributes{Hardness: 2, Cohesiveness: 0.5, Adhesiveness: 1}
	c := Simulate(attr)
	if c.PeakForce() > 2.001 || c.PeakForce() < 1.9 {
		t.Errorf("peak = %g, want ≈ 2", c.PeakForce())
	}
	// Negative lobe must exist for a sticky sample.
	hasNeg := false
	for _, p := range c.Points {
		if p.F < 0 {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		t.Error("sticky sample should pull the probe (negative force)")
	}
	// Non-sticky sample shows no negative force.
	c2 := Simulate(Attributes{Hardness: 2, Cohesiveness: 0.5})
	for _, p := range c2.Points {
		if p.F < 0 {
			t.Fatal("non-sticky sample must not go negative")
		}
	}
	if c.Duration() <= 0 {
		t.Error("zero duration")
	}
}

func TestExtractRejectsDegenerateCurves(t *testing.T) {
	if _, err := (Curve{DT: 0.01}).Extract(); err == nil {
		t.Error("empty curve should error")
	}
	one := Curve{DT: 0.01, Points: []ForcePoint{{0, 1}, {0.01, 2}, {0.02, 1}}}
	if _, err := one.Extract(); err == nil {
		t.Error("single-lobe curve should error")
	}
}

func TestASCIIPlot(t *testing.T) {
	c := Simulate(Attributes{Hardness: 2, Cohesiveness: 0.5, Adhesiveness: 1})
	plot := c.ASCIIPlot(10, 60)
	if len(plot) == 0 {
		t.Fatal("empty plot")
	}
	if c.ASCIIPlot(1, 5) != "" {
		t.Error("degenerate dims should return empty")
	}
}

func TestToRU(t *testing.T) {
	if v, err := ToRU(5, RU); err != nil || v != 5 {
		t.Error("RU identity")
	}
	if v, _ := ToRU(2, Newton); v != 2 {
		t.Error("N conversion")
	}
	v, _ := ToRU(1000, GramForce)
	if math.Abs(v-9.80665) > 1e-9 {
		t.Errorf("1000 gf = %g RU", v)
	}
	if _, err := ToRU(1, ForceUnit(99)); err == nil {
		t.Error("unknown unit should error")
	}
	if Newton.String() != "N" || GramForce.String() != "gf" {
		t.Error("strings")
	}
}

func TestDishesData(t *testing.T) {
	// Table II(b) invariants: both dishes share the 2.5% gelatin dose of
	// Table I data 3 and differ only in emulsions.
	if Bavarois.Gels != MilkJelly.Gels || Bavarois.Gels != PureGelatin25.Gels {
		t.Error("dish gel settings must match Table I data 3")
	}
	if Bavarois.Attr.Hardness <= MilkJelly.Attr.Hardness {
		t.Error("Bavarois is the harder dish in Table II(b)")
	}
	if Bavarois.Attr.Cohesiveness <= MilkJelly.Attr.Cohesiveness {
		t.Error("Bavarois is the more cohesive dish in Table II(b)")
	}
}
