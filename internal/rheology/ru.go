package rheology

import "fmt"

// ForceUnit is the unit a source study reported its rheometer values
// in. The paper notes rheometer products do not share a standardized
// unit and converts everything to RU (rheological units), the unit of
// the original Friedman texturometer, before comparison.
type ForceUnit int

// Source units encountered in the cited studies.
const (
	RU ForceUnit = iota
	Newton
	GramForce
	KiloPascal // plate pressure for a standard 25 mm probe
)

// String names the unit.
func (u ForceUnit) String() string {
	switch u {
	case RU:
		return "RU"
	case Newton:
		return "N"
	case GramForce:
		return "gf"
	case KiloPascal:
		return "kPa"
	default:
		return "?"
	}
}

// Conversion factors to RU. The texturometer's RU is approximately
// proportional to force; the factors below follow the calibration
// constants used when comparing texturometer and universal-testing-
// machine readings in the sensory-instrumental correlation literature
// (≈1 RU per newton of peak force for a standard sample geometry).
const (
	ruPerNewton    = 1.0
	ruPerGramForce = 0.00980665         // 1 gf = 9.80665 mN
	ruPerKPa       = 0.4908738521234052 // 25 mm probe: kPa × area (m²) × 1000 → N
)

// ToRU converts a value in the given unit to RU.
func ToRU(value float64, unit ForceUnit) (float64, error) {
	switch unit {
	case RU:
		return value, nil
	case Newton:
		return value * ruPerNewton, nil
	case GramForce:
		return value * ruPerGramForce, nil
	case KiloPascal:
		return value * ruPerKPa, nil
	default:
		return 0, fmt.Errorf("rheology: unknown force unit %d", int(unit))
	}
}
