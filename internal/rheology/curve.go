package rheology

import (
	"fmt"
	"math"
)

// ForcePoint is one sample of a rheometer force-time curve. Positive
// force is compression (probe descending into the sample); negative
// force is the pull the sticky sample exerts while the probe ascends.
type ForcePoint struct {
	T float64 // seconds
	F float64 // RU
}

// Curve is a simulated two-compression TPA force-time curve, the shape
// of the paper's Figure 2.
type Curve struct {
	Points []ForcePoint
	DT     float64 // sampling interval, seconds
}

// Phase durations of the simulated TPA cycle, in seconds.
const (
	compressDur = 1.0  // descending action
	ascendDur   = 0.5  // ascending action (negative lobe lives here)
	pauseDur    = 0.25 // probe travel between the two bites
	curveDT     = 0.005
)

// Simulate synthesizes the TPA curve a rheometer would record for a
// sample with the given attributes:
//
//   - the first compression rises to a peak F1 = Hardness, then decays
//     to 70% of the peak as the sample's structure collapses;
//   - the first ascent shows a negative lobe whose area is the
//     Adhesiveness;
//   - the second compression repeats the first scaled so that the ratio
//     of compression areas c/a equals the Cohesiveness.
func Simulate(attr Attributes) Curve {
	var pts []ForcePoint
	t := 0.0
	push := func(f float64) {
		pts = append(pts, ForcePoint{T: t, F: f})
		t += curveDT
	}

	// First compression.
	compress := func(peak float64) {
		for tt := 0.0; tt < compressDur; tt += curveDT {
			x := tt / compressDur
			var f float64
			if x <= 0.6 {
				// Rise to the peak: smooth quadratic.
				u := x / 0.6
				f = peak * u * u
			} else {
				// Post-fracture decay toward 70% of the peak.
				u := (x - 0.6) / 0.4
				f = peak * (1 - 0.3*u)
			}
			push(f)
		}
	}
	compress(attr.Hardness)

	// Ascent: triangular negative lobe with area = Adhesiveness.
	depth := 0.0
	if attr.Adhesiveness > 0 {
		depth = attr.Adhesiveness / (0.5 * ascendDur)
	}
	for tt := 0.0; tt < ascendDur; tt += curveDT {
		x := tt / ascendDur
		var f float64
		if x <= 0.5 {
			f = -depth * (x / 0.5)
		} else {
			f = -depth * (1 - (x-0.5)/0.5)
		}
		push(f)
	}

	// Pause between bites.
	for tt := 0.0; tt < pauseDur; tt += curveDT {
		push(0)
	}

	// Second compression: same shape scaled so area ratio = cohesiveness.
	compress(attr.Hardness * attr.Cohesiveness)

	return Curve{Points: pts, DT: curveDT}
}

// Extract recovers the texture attributes from a TPA curve by the
// definitions of Friedman, Whitney & Szczesniak (1963): hardness is the
// first compression's peak force F1; cohesiveness is the ratio of the
// second compression area to the first (c/a); adhesiveness is the
// magnitude of the negative area during the first ascent (b).
func (c Curve) Extract() (Attributes, error) {
	lobes := c.lobes()
	var pos []lobe
	var negArea float64
	seenFirstPos := false
	for _, l := range lobes {
		if l.positive {
			pos = append(pos, l)
			seenFirstPos = true
		} else if seenFirstPos && len(pos) == 1 {
			negArea += -l.area
		}
	}
	if len(pos) < 2 {
		return Attributes{}, fmt.Errorf("rheology: curve has %d compression lobes, want 2", len(pos))
	}
	if pos[0].area <= 0 {
		return Attributes{}, fmt.Errorf("rheology: first compression area is %g", pos[0].area)
	}
	return Attributes{
		Hardness:     pos[0].peak,
		Cohesiveness: pos[1].area / pos[0].area,
		Adhesiveness: negArea,
	}, nil
}

type lobe struct {
	positive bool
	peak     float64 // max |F|
	area     float64 // signed ∫F dt
}

// lobes splits the curve into contiguous same-sign regions, ignoring
// zero-force stretches.
func (c Curve) lobes() []lobe {
	var out []lobe
	var cur *lobe
	for _, p := range c.Points {
		if p.F == 0 {
			cur = nil
			continue
		}
		pos := p.F > 0
		if cur == nil || cur.positive != pos {
			out = append(out, lobe{positive: pos})
			cur = &out[len(out)-1]
		}
		cur.area += p.F * c.DT
		if math.Abs(p.F) > cur.peak {
			cur.peak = math.Abs(p.F)
		}
	}
	return out
}

// PeakForce returns the maximum force over the whole curve.
func (c Curve) PeakForce() float64 {
	m := 0.0
	for _, p := range c.Points {
		if p.F > m {
			m = p.F
		}
	}
	return m
}

// Duration returns the curve's time span in seconds.
func (c Curve) Duration() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].T
}

// ASCIIPlot renders the curve as a small text plot (rows × cols) for
// CLI display of Figure 2.
func (c Curve) ASCIIPlot(rows, cols int) string {
	if len(c.Points) == 0 || rows < 3 || cols < 10 {
		return ""
	}
	minF, maxF := 0.0, 0.0
	for _, p := range c.Points {
		if p.F < minF {
			minF = p.F
		}
		if p.F > maxF {
			maxF = p.F
		}
	}
	if maxF == minF {
		maxF = minF + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = make([]byte, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	zeroRow := int(float64(rows-1) * maxF / (maxF - minF))
	if zeroRow >= 0 && zeroRow < rows {
		for j := 0; j < cols; j++ {
			grid[zeroRow][j] = '-'
		}
	}
	for _, p := range c.Points {
		col := int(p.T / c.Duration() * float64(cols-1))
		row := int(float64(rows-1) * (maxF - p.F) / (maxF - minF))
		if row >= 0 && row < rows && col >= 0 && col < cols {
			grid[row][col] = '*'
		}
	}
	out := make([]byte, 0, rows*(cols+1))
	for _, line := range grid {
		out = append(out, line...)
		out = append(out, '\n')
	}
	return string(out)
}
