// Package rheology provides the quantitative-texture side of the
// reproduction: the empirical measurements the paper collected from six
// food-science studies (Table I) and from the Bavarois / Milk jelly
// studies (Table II(b)), a texture predictor calibrated to those
// measurements, and a simulator of the two-compression texture profile
// analysis (TPA) curve a rheometer records (the paper's Figure 2),
// together with extraction of hardness, cohesiveness and adhesiveness
// from such curves.
//
// The paper's measurements come from physical rheometers; this package
// substitutes a calibrated simulator so that every downstream code path
// (linkage, case study, benches) can run without laboratory hardware,
// and so benches can sweep compositions the cited studies never
// measured.
package rheology

import (
	"fmt"

	"repro/internal/recipe"
)

// Attributes are the three quantitative texture attributes of the
// paper, in rheological units (RU).
type Attributes struct {
	Hardness     float64 `json:"hardness"`
	Cohesiveness float64 `json:"cohesiveness"`
	Adhesiveness float64 `json:"adhesiveness"`
}

// Measurement is one empirical setting: gel (and possibly emulsion)
// concentrations with the texture attributes measured for them.
type Measurement struct {
	ID        string                       `json:"id"`
	Source    string                       `json:"source"`
	Gels      [recipe.NumGels]float64      `json:"gels"`      // weight ratios
	Emulsions [recipe.NumEmulsions]float64 `json:"emulsions"` // weight ratios
	Attr      Attributes                   `json:"attr"`
}

// GelVector returns the gel concentrations as a slice.
func (m Measurement) GelVector() []float64 {
	out := make([]float64, recipe.NumGels)
	copy(out, m.Gels[:])
	return out
}

// EmulsionVector returns the emulsion concentrations as a slice.
func (m Measurement) EmulsionVector() []float64 {
	out := make([]float64, recipe.NumEmulsions)
	copy(out, m.Emulsions[:])
	return out
}

// GelFeatures returns the gel setting in −log feature space, the space
// the topic model's Gaussians live in.
func (m Measurement) GelFeatures() []float64 {
	return recipe.FeatureVector(m.Gels[:])
}

// EmulsionFeatures returns the emulsion setting in −log feature space.
func (m Measurement) EmulsionFeatures() []float64 {
	return recipe.FeatureVector(m.Emulsions[:])
}

// String renders the measurement compactly.
func (m Measurement) String() string {
	return fmt.Sprintf("%s: gelatin=%.3f kanten=%.3f agar=%.3f → H=%.2f C=%.2f A=%.2f",
		m.ID, m.Gels[recipe.Gelatin], m.Gels[recipe.Kanten], m.Gels[recipe.Agar],
		m.Attr.Hardness, m.Attr.Cohesiveness, m.Attr.Adhesiveness)
}

// TableI reproduces the paper's Table I verbatim: 13 empirical gel
// settings from the six cited studies ([3]-[5],[15]-[17]) with their
// rheometer-measured attributes in RU. Note the paper's table numbers
// two consecutive rows "8"; we keep the conventional 1..13 numbering.
var TableI = []Measurement{
	{ID: "1", Source: "Kawamura & Takayanagi 1980", Gels: gels(0.018, 0, 0), Attr: Attributes{0.20, 0.6, 0.1}},
	{ID: "2", Source: "Kawamura & Takayanagi 1980", Gels: gels(0.02, 0, 0), Attr: Attributes{0.3, 0.59, 0.04}},
	{ID: "3", Source: "Kawamura, Nakajima & Kouno 1978", Gels: gels(0.025, 0, 0), Attr: Attributes{0.72, 0.17, 0.57}},
	{ID: "4", Source: "Kawamura, Nakajima & Kouno 1978", Gels: gels(0.03, 0, 0), Attr: Attributes{2.78, 0.31, 0.42}},
	{ID: "5", Source: "Kurimoto et al. 1997", Gels: gels(0.03, 0, 0.03), Attr: Attributes{3.01, 0.35, 12.6}},
	{ID: "6", Source: "Okuma, Akabane & Nakahama 1978", Gels: gels(0, 0.008, 0), Attr: Attributes{2.2, 0.12, 0}},
	{ID: "7", Source: "Okuma, Akabane & Nakahama 1978", Gels: gels(0, 0.01, 0), Attr: Attributes{3.5, 0.1, 0}},
	{ID: "8", Source: "Okuma, Akabane & Nakahama 1978", Gels: gels(0, 0.012, 0), Attr: Attributes{5.0, 0.8, 0}},
	{ID: "9", Source: "Okuma, Akabane & Nakahama 1978", Gels: gels(0, 0.02, 0), Attr: Attributes{5.67, 0.03, 0}},
	{ID: "10", Source: "Suzuno, Sawayama & Kawabata 1992", Gels: gels(0, 0, 0.008), Attr: Attributes{1.0, 0.48, 0}},
	{ID: "11", Source: "Suzuno, Sawayama & Kawabata 1992", Gels: gels(0, 0, 0.01), Attr: Attributes{1.5, 0.33, 0.01}},
	{ID: "12", Source: "Suzuno, Sawayama & Kawabata 1992", Gels: gels(0, 0, 0.012), Attr: Attributes{2.7, 0.28, 0.02}},
	{ID: "13", Source: "Murayama 1992", Gels: gels(0, 0, 0.03), Attr: Attributes{2.21, 0.20, 1.95}},
}

// Bavarois is the first dish of the paper's Table II(b) (Kawabata &
// Sawayama 1974): 2.5% gelatin with egg yolk, raw cream and milk.
var Bavarois = Measurement{
	ID:        "Bavarois",
	Source:    "Kawabata & Sawayama 1974",
	Gels:      gels(0.025, 0, 0),
	Emulsions: emulsions(0, 0, 0.08, 0.2, 0.4, 0),
	Attr:      Attributes{3.860, 0.809, 0.095},
}

// MilkJelly is the second dish of Table II(b) (Motegi 1975): 2.5%
// gelatin with sugar and milk.
var MilkJelly = Measurement{
	ID:        "Milk jelly",
	Source:    "Motegi 1975",
	Gels:      gels(0.025, 0, 0),
	Emulsions: emulsions(0.032, 0, 0, 0, 0.787, 0),
	Attr:      Attributes{1.83, 0.27, 0.44},
}

// PureGelatin25 is Table I data 3, the pure-gelatin reference the paper
// compares both dishes against (third row of Table II(b)).
var PureGelatin25 = TableI[2]

func gels(gelatin, kanten, agar float64) [recipe.NumGels]float64 {
	return [recipe.NumGels]float64{gelatin, kanten, agar}
}

func emulsions(sugar, albumen, yolk, cream, milk, yogurt float64) [recipe.NumEmulsions]float64 {
	return [recipe.NumEmulsions]float64{sugar, albumen, yolk, cream, milk, yogurt}
}
